package stats

import (
	"math"
	"testing"
	"testing/quick"

	"pieo/internal/clock"
)

func TestRateMeterGbps(t *testing.T) {
	m := NewRateMeter(0)
	// 1500 bytes every 120 ns is exactly 100 Gbps.
	for i := 1; i <= 10; i++ {
		m.Record(clock.Time(120*i), 1500)
	}
	got := m.Gbps()
	if math.Abs(got-100) > 1e-9 {
		t.Fatalf("Gbps = %v, want 100", got)
	}
	if m.Bytes() != 15000 || m.Packets() != 10 {
		t.Fatalf("Bytes/Packets = %d/%d, want 15000/10", m.Bytes(), m.Packets())
	}
}

func TestRateMeterEmptyWindow(t *testing.T) {
	m := NewRateMeter(100)
	if got := m.Gbps(); got != 0 {
		t.Fatalf("empty meter Gbps = %v, want 0", got)
	}
}

func TestRateMeterCloseAt(t *testing.T) {
	m := NewRateMeter(0)
	m.Record(100, 1000) // 8000 bits over 100 ns = 80 Gbps so far
	m.CloseAt(200)      // idle tail halves the average
	if got := m.Gbps(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("Gbps = %v, want 40", got)
	}
}

func TestIntervalSeries(t *testing.T) {
	s := NewIntervalSeries(100)
	s.Record(10, 125)  // bucket 0: 1000 bits / 100 ns = 10 Gbps
	s.Record(99, 125)  // bucket 0 again -> 20 Gbps
	s.Record(100, 250) // bucket 1: 2000 bits -> 20 Gbps
	s.Record(350, 125) // bucket 3; bucket 2 stays empty
	rates := s.Rates()
	want := []float64{20, 20, 0, 10}
	if len(rates) != len(want) {
		t.Fatalf("len(rates) = %d, want %d", len(rates), len(want))
	}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-9 {
			t.Fatalf("rates[%d] = %v, want %v", i, rates[i], want[i])
		}
	}
}

func TestIntervalSeriesZeroWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewIntervalSeries(0) did not panic")
		}
	}()
	NewIntervalSeries(0)
}

func TestJainIndexEqualShares(t *testing.T) {
	if got := JainIndex([]float64{4, 4, 4, 4}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("JainIndex(equal) = %v, want 1", got)
	}
}

func TestJainIndexDominated(t *testing.T) {
	// One flow hogging everything among n flows gives exactly 1/n.
	got := JainIndex([]float64{10, 0, 0, 0, 0})
	if math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("JainIndex(dominated) = %v, want 0.2", got)
	}
}

func TestJainIndexEdgeCases(t *testing.T) {
	if got := JainIndex(nil); got != 0 {
		t.Fatalf("JainIndex(nil) = %v, want 0", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Fatalf("JainIndex(zeros) = %v, want 0", got)
	}
}

// Property: Jain's index always lies in [1/n, 1] for non-negative,
// not-all-zero allocations.
func TestJainIndexBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		allZero := true
		for i, r := range raw {
			xs[i] = float64(r)
			if r != 0 {
				allZero = false
			}
		}
		got := JainIndex(xs)
		if allZero {
			return got == 0
		}
		n := float64(len(xs))
		return got >= 1/n-1e-9 && got <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || math.Abs(s.Mean-3) > 1e-12 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.P50 != 3 {
		t.Fatalf("P50 = %v, want 3", s.P50)
	}
	wantStd := math.Sqrt(2) // population stddev of 1..5
	if math.Abs(s.Stddev-wantStd) > 1e-12 {
		t.Fatalf("Stddev = %v, want %v", s.Stddev, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Fatalf("Summarize(nil) = %+v", s)
	}
}

func TestOrderDeviationIdentical(t *testing.T) {
	maxDev, meanDev := OrderDeviation([]string{"a", "b", "c"}, []string{"a", "b", "c"})
	if maxDev != 0 || meanDev != 0 {
		t.Fatalf("deviation = %d/%v, want 0/0", maxDev, meanDev)
	}
}

func TestOrderDeviationSwap(t *testing.T) {
	maxDev, meanDev := OrderDeviation([]string{"a", "b", "c", "d"}, []string{"b", "a", "c", "d"})
	if maxDev != 1 {
		t.Fatalf("maxDev = %d, want 1", maxDev)
	}
	if math.Abs(meanDev-0.5) > 1e-12 {
		t.Fatalf("meanDev = %v, want 0.5", meanDev)
	}
}

func TestOrderDeviationWorstCase(t *testing.T) {
	// Reversal of n elements has max displacement n-1.
	want := []string{"a", "b", "c", "d", "e"}
	got := []string{"e", "d", "c", "b", "a"}
	maxDev, _ := OrderDeviation(want, got)
	if maxDev != 4 {
		t.Fatalf("maxDev = %d, want 4", maxDev)
	}
}

func TestOrderDeviationIgnoresUnknown(t *testing.T) {
	maxDev, meanDev := OrderDeviation([]string{"a"}, []string{"x", "a"})
	if maxDev != 1 || meanDev != 1 {
		t.Fatalf("deviation = %d/%v, want 1/1", maxDev, meanDev)
	}
}

func TestOrderDeviationDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate ideal id did not panic")
		}
	}()
	OrderDeviation([]string{"a", "a"}, []string{"a"})
}
