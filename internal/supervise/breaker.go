// Package supervise is the self-healing layer that drives the repo's
// fault-tolerance mechanisms without an operator in the loop
// (DESIGN.md §12). It supplies three pieces:
//
//   - Breaker: a per-partition circuit breaker (closed → open →
//     half-open → closed) with clock-driven exponential backoff,
//     deterministic jitter, and a bounded half-open probe budget. The
//     sharded engine replaces its raw op-count rebuild backoff with one
//     Breaker per shard, which also yields MTTR accounting: the breaker
//     knows when an outage episode began and when it fully closed.
//   - Controller: graduated overload control — occupancy watermarks
//     with hysteresis that step the active admission policy through
//     admit-all → tail-drop → rank-aware push-out → shed, so a
//     saturated scheduler degrades by policy instead of oscillating
//     between extremes.
//   - Deadline helpers: bounded-time wrappers for blocking operations
//     that surface core.ErrDeadline instead of spinning.
//
// Everything here is driven by an injectable clock.Source — simulated
// ticks, engine operation counts, or wall time — so supervision
// behavior is exactly reproducible under test.
package supervise

import (
	"sync/atomic"

	"pieo/internal/backend"
	"pieo/internal/clock"
)

// BreakerConfig parameterizes one partition's circuit breaker. The zero
// value selects defaults chosen to match the sharded engine's
// historical op-count backoff (base 64, cap 4096, 8 rebuild attempts).
type BreakerConfig struct {
	// BaseBackoff is the delay before the first rebuild probe of an
	// outage episode, in clock ticks. Default 64.
	BaseBackoff clock.Time
	// MaxBackoff caps the exponential per-failure growth. Default 4096.
	MaxBackoff clock.Time
	// ProbeBudget is how many successful real operations a half-open
	// partition must serve before the breaker closes. Default 16.
	ProbeBudget int
	// JitterPct adds a deterministic 0..JitterPct percent of the backoff
	// on top of it, decorrelating simultaneous rebuild probes across
	// partitions without sacrificing replayability (the jitter is a hash
	// of partition index and failure streak, not a random draw).
	// Default 25; negative disables jitter entirely.
	JitterPct int
	// MaxRebuildAttempts bounds how many failed rebuilds an owner should
	// tolerate before abandoning the partition's salvage (the breaker
	// itself never gives up — this is advisory state for the owner's
	// salvage policy). Default 8.
	MaxRebuildAttempts int
}

// withDefaults fills zero fields with the package defaults.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 64
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 4096
	}
	if c.MaxBackoff < c.BaseBackoff {
		c.MaxBackoff = c.BaseBackoff
	}
	if c.ProbeBudget == 0 {
		c.ProbeBudget = 16
	}
	if c.JitterPct == 0 {
		c.JitterPct = 25
	}
	if c.JitterPct < 0 {
		c.JitterPct = 0
	}
	if c.MaxRebuildAttempts == 0 {
		c.MaxRebuildAttempts = 8
	}
	return c
}

// Breaker is one partition's circuit breaker. The owner (the sharded
// engine) serializes all state transitions under the partition's own
// lock; the phase and the next-probe instant are additionally published
// through atomics so lock-free fast paths (the engine's per-operation
// rebuild poll) can pre-check them without taking the lock. A stale
// lock-free read costs a wasted probe attempt that re-validates under
// the lock — never a wrong transition (DESIGN.md §12).
type Breaker struct {
	cfg BreakerConfig
	id  int // partition index; seeds the deterministic jitter

	phase    atomic.Int32  // backend.BreakerPhase, published under the owner's lock
	reopenAt atomic.Uint64 // next rebuild-probe instant while Open

	// Owner-lock-guarded episode state.
	streak     int        // consecutive failures this episode (backoff exponent)
	openedAt   clock.Time // first trip of the episode, for MTTR
	probesLeft int        // successful ops still needed to close, while HalfOpen
}

// NewBreaker builds a breaker for partition id with cfg's defaults
// applied. The breaker starts Closed.
func NewBreaker(id int, cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), id: id}
}

// Config returns the breaker's effective (defaults-applied) config.
func (b *Breaker) Config() BreakerConfig { return b.cfg }

// Phase returns the current breaker phase. Safe without the owner's
// lock; see the staleness contract in the type comment.
func (b *Breaker) Phase() backend.BreakerPhase {
	return backend.BreakerPhase(b.phase.Load())
}

// ReopenAt returns the next rebuild-probe instant (meaningful while
// Open). Safe without the owner's lock.
func (b *Breaker) ReopenAt() clock.Time {
	return clock.Time(b.reopenAt.Load())
}

// Streak returns the failure streak of the current episode. Owner's
// lock required.
func (b *Breaker) Streak() int { return b.streak }

// OpenedAt returns when the current outage episode began. Owner's lock
// required; meaningful while the breaker is not Closed.
func (b *Breaker) OpenedAt() clock.Time { return b.openedAt }

// Trip opens the breaker at time now: the partition failed. From Closed
// this starts a new outage episode; from HalfOpen it extends the current
// one (a probation failure), preserving the streak so the backoff keeps
// growing. Owner's lock required.
func (b *Breaker) Trip(now clock.Time) {
	if b.Phase() == backend.BreakerClosed {
		b.openedAt = now
	}
	b.streak++
	b.probesLeft = 0
	b.reopenAt.Store(uint64(now + b.Backoff(b.streak)))
	b.phase.Store(int32(backend.BreakerOpen))
}

// FailProbe records a failed rebuild probe at time now: the streak grows
// and the next probe backs off further. Owner's lock required; only
// meaningful while Open.
func (b *Breaker) FailProbe(now clock.Time) {
	b.streak++
	b.reopenAt.Store(uint64(now + b.Backoff(b.streak)))
}

// ReadyToProbe reports whether an Open breaker's backoff has expired at
// time now — a rebuild probe is due. Safe without the owner's lock (the
// lock-free pre-check the engine polls per operation); callers must
// re-validate partition state under the lock before acting.
func (b *Breaker) ReadyToProbe(now clock.Time) bool {
	return b.Phase() == backend.BreakerOpen && uint64(now) >= b.reopenAt.Load()
}

// EnterProbation transitions Open → HalfOpen after a successful rebuild:
// the partition serves real traffic again, but full re-admission waits
// for ProbeBudget successful operations. Owner's lock required.
func (b *Breaker) EnterProbation(now clock.Time) {
	_ = now // probation entry is not an episode boundary; MTTR closes on ProbeOK
	b.probesLeft = b.cfg.ProbeBudget
	b.phase.Store(int32(backend.BreakerHalfOpen))
}

// ProbeOK records one successful operation on a HalfOpen partition.
// When the probe budget is exhausted the breaker closes: closed reports
// the transition and downtime is the full outage episode's duration
// (now − first trip), the per-episode MTTR sample. Calls in any other
// phase are no-ops. Owner's lock required.
func (b *Breaker) ProbeOK(now clock.Time) (closed bool, downtime clock.Time) {
	if b.Phase() != backend.BreakerHalfOpen {
		return false, 0
	}
	b.probesLeft--
	if b.probesLeft > 0 {
		return false, 0
	}
	downtime = now - b.openedAt
	b.streak = 0
	b.probesLeft = 0
	b.reopenAt.Store(0)
	b.phase.Store(int32(backend.BreakerClosed))
	return true, downtime
}

// Backoff returns the delay before probe number streak (1-based): the
// base doubled per prior failure, capped, plus deterministic jitter.
func (b *Breaker) Backoff(streak int) clock.Time {
	if streak < 1 {
		streak = 1
	}
	d := b.cfg.BaseBackoff
	for i := 1; i < streak && d < b.cfg.MaxBackoff; i++ {
		d <<= 1
	}
	if d > b.cfg.MaxBackoff {
		d = b.cfg.MaxBackoff
	}
	if b.cfg.JitterPct > 0 {
		h := splitmix64(uint64(b.id)<<32 ^ uint64(streak))
		d += d * clock.Time(h%uint64(b.cfg.JitterPct+1)) / 100
	}
	return d
}

// Horizon returns the worst-case single backoff interval — MaxBackoff
// plus maximal jitter. After the last fault, an Open partition is
// guaranteed a rebuild probe within one Horizon (and a convergence test
// can bound full recovery by Horizon × MaxRebuildAttempts).
func (b *Breaker) Horizon() clock.Time {
	d := b.cfg.MaxBackoff
	return d + d*clock.Time(b.cfg.JitterPct)/100
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash for
// the deterministic jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
