package supervise

import (
	"pieo/internal/clock"

	"pieo/internal/core"
)

// Deadline returns the expiry instant for a budget starting now on clk,
// saturating at clock.Never (a Never deadline never expires, matching
// the predicate sentinel convention).
func Deadline(clk clock.Source, budget clock.Time) clock.Time {
	now := clk.Now()
	d := now + budget
	if d < now { // overflow
		return clock.Never
	}
	return d
}

// Expired reports whether deadline has passed on clk. A zero deadline
// means "no deadline" and never expires.
func Expired(clk clock.Source, deadline clock.Time) bool {
	if deadline == 0 || deadline == clock.Never {
		return false
	}
	return clk.Now() > deadline
}

// WithDeadline runs step repeatedly until it reports done, the deadline
// derived from budget expires (returning core.ErrDeadline), or step
// returns its own error. It is the bounded-blocking-loop shape the
// scheduler's dequeue path uses inline; helpers and tests use this
// wrapper directly.
func WithDeadline(clk clock.Source, budget clock.Time, step func() (done bool, err error)) error {
	deadline := Deadline(clk, budget)
	for {
		done, err := step()
		if err != nil || done {
			return err
		}
		if Expired(clk, deadline) {
			return core.ErrDeadline
		}
	}
}
