package supervise

import (
	"fmt"
	"sync/atomic"

	"pieo/internal/backend"
)

// Level is a graduated overload-control level. Higher levels shed more
// aggressively; the Controller steps through them one watermark at a
// time as occupancy rises and falls.
type Level int32

const (
	// LevelAdmitAll is the unloaded steady state: arrivals are admitted
	// and a full list surfaces as a plain rejection (the caller's
	// historical contract).
	LevelAdmitAll Level = iota
	// LevelTailDrop absorbs overflow silently: arrivals that meet a full
	// list are dropped without disturbing the resident set.
	LevelTailDrop
	// LevelPushOut applies the rank-aware rule: an arrival that outranks
	// the worst resident evicts it; otherwise the arrival is dropped.
	LevelPushOut
	// LevelShed drops arrivals at the door, before they touch the list
	// at all — the last-resort level that preserves already-admitted
	// work when occupancy is critical. Integrations keep the level from
	// inverting the priority order it protects by carving out
	// already-admitted re-enqueues and arrivals that outrank the worst
	// resident (internal/sched admits both under push-out).
	LevelShed
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelAdmitAll:
		return "admit-all"
	case LevelTailDrop:
		return "tail-drop"
	case LevelPushOut:
		return "push-out"
	case LevelShed:
		return "shed"
	default:
		return fmt.Sprintf("Level(%d)", int32(l))
	}
}

// Policy maps the level onto the backend admission policy an Enqueue
// should run under. LevelShed has no backend policy — callers shed
// before calling the backend — so it maps to push-out for the rare
// arrival a caller admits anyway.
func (l Level) Policy() backend.AdmissionPolicy {
	switch l {
	case LevelTailDrop:
		return backend.AdmitTailDrop
	case LevelPushOut, LevelShed:
		return backend.AdmitPushOut
	default:
		return backend.AdmitReject
	}
}

// Watermarks are the occupancy fractions (of capacity) at which the
// controller enters and exits each level. Hysteresis is the Enter/Exit
// gap: a level entered at Enter is only left when occupancy falls
// BELOW Exit, so occupancy noise around a single threshold cannot flap
// the policy (EXPERIMENTS.md "recovery" demonstrates the no-flapping
// property across ≥100 consecutive evaluations at constant load).
type Watermarks struct {
	EnterTailDrop, ExitTailDrop float64
	EnterPushOut, ExitPushOut   float64
	EnterShed, ExitShed         float64
}

// DefaultWatermarks returns the default ladder: tail-drop at 70%
// (exit 60%), push-out at 85% (exit 75%), shed at 97% (exit 90%).
func DefaultWatermarks() Watermarks {
	return Watermarks{
		EnterTailDrop: 0.70, ExitTailDrop: 0.60,
		EnterPushOut: 0.85, ExitPushOut: 0.75,
		EnterShed: 0.97, ExitShed: 0.90,
	}
}

// Controller is the graduated overload controller: it evaluates
// occupancy against the watermark ladder and holds the current Level.
// One goroutine evaluates (the scheduler's arrival path); the level and
// counters are atomics so concurrent observers (health reporting) read
// coherently.
type Controller struct {
	capacity int
	// enter[l] / exit[l] are absolute occupancies for level l (1..3):
	// step up to l when occupancy >= enter[l], step down from l when
	// occupancy < exit[l]. Index 0 is unused (LevelAdmitAll has no
	// thresholds).
	enter, exit [4]int

	level       atomic.Int32
	evals       atomic.Uint64
	transitions atomic.Uint64
	sheds       atomic.Uint64
}

// NewController builds a controller for a backend of the given capacity.
// A zero Watermarks selects DefaultWatermarks. Panics on a malformed
// ladder (fractions outside (0, 1], Exit ≥ Enter, or levels out of
// order) — a misconfigured controller would silently misbehave under
// exactly the load it exists for.
func NewController(capacity int, wm Watermarks) *Controller {
	if capacity <= 0 {
		panic(fmt.Sprintf("supervise: controller capacity must be positive, got %d", capacity))
	}
	if wm == (Watermarks{}) {
		wm = DefaultWatermarks()
	}
	pairs := [3][2]float64{
		{wm.EnterTailDrop, wm.ExitTailDrop},
		{wm.EnterPushOut, wm.ExitPushOut},
		{wm.EnterShed, wm.ExitShed},
	}
	c := &Controller{capacity: capacity}
	prevEnter := 0.0
	for i, p := range pairs {
		enter, exit := p[0], p[1]
		if enter <= 0 || enter > 1 || exit <= 0 || exit >= enter {
			panic(fmt.Sprintf("supervise: watermark pair %d malformed: enter=%v exit=%v", i+1, enter, exit))
		}
		if enter < prevEnter {
			panic(fmt.Sprintf("supervise: watermark enter thresholds must be non-decreasing (level %d: %v after %v)", i+1, enter, prevEnter))
		}
		prevEnter = enter
		// Round enter up and exit down so a fractional threshold never
		// admits a level earlier (or holds it longer) than the fraction
		// specifies on small capacities.
		c.enter[i+1] = ceilFrac(capacity, enter)
		c.exit[i+1] = int(float64(capacity) * exit)
		if c.exit[i+1] >= c.enter[i+1] {
			// Degenerate on tiny capacities: keep at least one unit of
			// hysteresis so the no-flapping property survives rounding.
			c.exit[i+1] = c.enter[i+1] - 1
		}
	}
	return c
}

func ceilFrac(n int, f float64) int {
	v := int(float64(n) * f)
	if float64(v) < float64(n)*f {
		v++
	}
	return v
}

// Capacity returns the capacity the watermarks are scaled against.
func (c *Controller) Capacity() int { return c.capacity }

// Level returns the current overload level.
func (c *Controller) Level() Level { return Level(c.level.Load()) }

// Evaluate steps the level ladder against the observed occupancy and
// returns the level arrivals should be admitted under. Steps are
// hysteretic: the controller climbs while occupancy is at or above the
// next level's enter mark and descends only when occupancy falls below
// the current level's exit mark, so at any constant occupancy the level
// is stable after at most one call (no flapping).
func (c *Controller) Evaluate(occupancy int) Level {
	c.evals.Add(1)
	lvl := Level(c.level.Load())
	next := lvl
	for next < LevelShed && occupancy >= c.enter[next+1] {
		next++
	}
	for next > LevelAdmitAll && occupancy < c.exit[next] {
		next--
	}
	if next != lvl {
		c.transitions.Add(1)
		c.level.Store(int32(next))
	}
	return next
}

// NoteShed counts one arrival dropped at the door under LevelShed.
func (c *Controller) NoteShed() { c.sheds.Add(1) }

// ControllerStats is a point-in-time controller snapshot.
type ControllerStats struct {
	// Level is the current overload level.
	Level Level
	// Evaluations counts Evaluate calls; Transitions counts the subset
	// that changed level. Their ratio is the flapping measure the
	// recovery experiment asserts on.
	Evaluations uint64
	Transitions uint64
	// Sheds counts arrivals dropped at the door under LevelShed.
	Sheds uint64
}

// Stats returns the controller's counters.
func (c *Controller) Stats() ControllerStats {
	return ControllerStats{
		Level:       c.Level(),
		Evaluations: c.evals.Load(),
		Transitions: c.transitions.Load(),
		Sheds:       c.sheds.Load(),
	}
}
