package supervise

import (
	"errors"
	"testing"

	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
)

// TestBreakerLifecycle walks one full outage episode through the state
// machine on an explicit clock: trip → backoff → probe → probation →
// close, with the MTTR sample spanning the whole episode.
func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(0, BreakerConfig{BaseBackoff: 100, MaxBackoff: 800, ProbeBudget: 3, JitterPct: -1})
	if b.Phase() != backend.BreakerClosed {
		t.Fatalf("new breaker phase = %v, want closed", b.Phase())
	}

	b.Trip(1000)
	if b.Phase() != backend.BreakerOpen {
		t.Fatalf("phase after trip = %v, want open", b.Phase())
	}
	if got := b.ReopenAt(); got != 1100 {
		t.Fatalf("reopenAt = %v, want 1100 (trip + base backoff)", got)
	}
	if b.ReadyToProbe(1099) {
		t.Fatal("ready to probe before backoff expired")
	}
	if !b.ReadyToProbe(1100) {
		t.Fatal("not ready to probe at the backoff instant")
	}

	// A failed probe doubles the backoff.
	b.FailProbe(1100)
	if got := b.ReopenAt(); got != 1300 {
		t.Fatalf("reopenAt after failed probe = %v, want 1300 (+200)", got)
	}
	if b.Streak() != 2 {
		t.Fatalf("streak = %d, want 2", b.Streak())
	}

	// Successful rebuild: half-open, then three good ops close it.
	b.EnterProbation(1300)
	if b.Phase() != backend.BreakerHalfOpen {
		t.Fatalf("phase after rebuild = %v, want half-open", b.Phase())
	}
	for i := 0; i < 2; i++ {
		if closed, _ := b.ProbeOK(1400); closed {
			t.Fatalf("breaker closed after %d probes, budget is 3", i+1)
		}
	}
	closed, downtime := b.ProbeOK(1500)
	if !closed {
		t.Fatal("breaker did not close after exhausting the probe budget")
	}
	if downtime != 500 {
		t.Fatalf("MTTR sample = %v, want 500 (close at 1500 − trip at 1000)", downtime)
	}
	if b.Phase() != backend.BreakerClosed || b.Streak() != 0 {
		t.Fatalf("post-close state: phase=%v streak=%d, want closed/0", b.Phase(), b.Streak())
	}
}

// TestBreakerProbationFailure: a trip during probation re-opens the
// breaker with the streak preserved, so the backoff keeps growing and
// the episode's MTTR keeps accumulating from the original trip.
func TestBreakerProbationFailure(t *testing.T) {
	b := NewBreaker(3, BreakerConfig{BaseBackoff: 10, MaxBackoff: 80, ProbeBudget: 4, JitterPct: -1})
	b.Trip(100) // streak 1, reopen at 110
	b.EnterProbation(110)
	if closed, _ := b.ProbeOK(111); closed {
		t.Fatal("closed with probes left")
	}
	b.Trip(112) // probation failure: streak 2
	if b.Phase() != backend.BreakerOpen || b.Streak() != 2 {
		t.Fatalf("after probation failure: phase=%v streak=%d, want open/2", b.Phase(), b.Streak())
	}
	if got := b.ReopenAt(); got != 112+20 {
		t.Fatalf("reopenAt = %v, want 132 (doubled backoff)", got)
	}
	b.EnterProbation(132)
	for i := 0; i < 3; i++ {
		b.ProbeOK(140)
	}
	closed, downtime := b.ProbeOK(150)
	if !closed || downtime != 50 {
		t.Fatalf("episode close = %v/%v, want true/50 (150 − original trip 100)", closed, downtime)
	}
}

// TestBreakerBackoffCapAndJitter: the exponential growth caps at
// MaxBackoff, and jitter is deterministic, bounded by JitterPct, and
// decorrelated across partition ids.
func TestBreakerBackoffCapAndJitter(t *testing.T) {
	plain := NewBreaker(0, BreakerConfig{BaseBackoff: 64, MaxBackoff: 4096, JitterPct: -1})
	for streak, want := range map[int]clock.Time{1: 64, 2: 128, 3: 256, 7: 4096, 20: 4096} {
		if got := plain.Backoff(streak); got != want {
			t.Fatalf("Backoff(%d) = %v, want %v", streak, got, want)
		}
	}

	j1 := NewBreaker(1, BreakerConfig{BaseBackoff: 100, MaxBackoff: 4096, JitterPct: 25})
	j2 := NewBreaker(2, BreakerConfig{BaseBackoff: 100, MaxBackoff: 4096, JitterPct: 25})
	differ := false
	for streak := 1; streak <= 6; streak++ {
		a, b2 := j1.Backoff(streak), j2.Backoff(streak)
		if a != j1.Backoff(streak) {
			t.Fatal("jitter is not deterministic")
		}
		base := clock.Time(100) << uint(streak-1)
		if a < base || a > base+base/4 {
			t.Fatalf("jittered Backoff(%d) = %v outside [base, base+25%%] = [%v, %v]", streak, a, base, base+base/4)
		}
		if a != b2 {
			differ = true
		}
	}
	if !differ {
		t.Fatal("jitter identical across partition ids; probes would synchronize")
	}
	if h := j1.Horizon(); h != 4096+4096/4 {
		t.Fatalf("Horizon = %v, want 5120", h)
	}
}

// TestBreakerDefaultsMatchLegacyBackoff: the zero config reproduces the
// engine's historical op-count schedule (base 64, cap 4096, 8 attempts).
func TestBreakerDefaultsMatchLegacyBackoff(t *testing.T) {
	cfg := NewBreaker(0, BreakerConfig{}).Config()
	if cfg.BaseBackoff != 64 || cfg.MaxBackoff != 4096 || cfg.MaxRebuildAttempts != 8 {
		t.Fatalf("defaults = %+v, want base 64 / max 4096 / attempts 8", cfg)
	}
	if cfg.ProbeBudget != 16 || cfg.JitterPct != 25 {
		t.Fatalf("defaults = %+v, want probe budget 16 / jitter 25", cfg)
	}
}

// TestControllerLadder steps occupancy up and down through every level
// and checks the hysteresis gaps: levels are entered at Enter and left
// only below Exit.
func TestControllerLadder(t *testing.T) {
	c := NewController(1000, Watermarks{}) // defaults: 700/600, 850/750, 970/900
	steps := []struct {
		occ  int
		want Level
	}{
		{0, LevelAdmitAll},
		{699, LevelAdmitAll},
		{700, LevelTailDrop},  // enter tail-drop
		{650, LevelTailDrop},  // inside the hysteresis band: hold
		{599, LevelAdmitAll},  // below exit: release
		{849, LevelTailDrop},  // re-enter
		{850, LevelPushOut},   // climb
		{751, LevelPushOut},   // hold above exit
		{749, LevelTailDrop},  // descend one level
		{970, LevelShed},      // multi-step climb in one evaluation
		{901, LevelShed},      // hold
		{899, LevelPushOut},   // descend
		{100, LevelAdmitAll},  // multi-step descent in one evaluation
	}
	for i, s := range steps {
		if got := c.Evaluate(s.occ); got != s.want {
			t.Fatalf("step %d: Evaluate(%d) = %v, want %v", i, s.occ, got, s.want)
		}
	}
	st := c.Stats()
	if st.Evaluations != uint64(len(steps)) {
		t.Fatalf("evaluations = %d, want %d", st.Evaluations, len(steps))
	}
}

// TestControllerNoFlapping is the hysteresis property the ISSUE's
// acceptance criteria name: at ANY constant occupancy — including
// exactly on an enter or exit watermark — the level is stable across
// ≥100 consecutive evaluations after the first.
func TestControllerNoFlapping(t *testing.T) {
	boundaries := []int{0, 599, 600, 699, 700, 749, 750, 849, 850, 899, 900, 969, 970, 1000}
	for _, occ := range boundaries {
		c := NewController(1000, Watermarks{})
		settled := c.Evaluate(occ)
		before := c.Stats().Transitions
		for i := 0; i < 120; i++ {
			if got := c.Evaluate(occ); got != settled {
				t.Fatalf("occ %d: level flapped to %v after settling at %v (eval %d)", occ, got, settled, i)
			}
		}
		if delta := c.Stats().Transitions - before; delta != 0 {
			t.Fatalf("occ %d: %d transitions across constant-load evaluations, want 0", occ, delta)
		}
	}
}

// TestControllerSmallCapacity: rounding on tiny capacities must keep at
// least one unit of hysteresis, or boundary occupancies would flap.
func TestControllerSmallCapacity(t *testing.T) {
	c := NewController(8, Watermarks{})
	for occ := 0; occ <= 8; occ++ {
		settled := c.Evaluate(occ)
		for i := 0; i < 100; i++ {
			if got := c.Evaluate(occ); got != settled {
				t.Fatalf("capacity 8, occ %d: flapped %v → %v", occ, settled, got)
			}
		}
	}
}

// TestLevelPolicyMapping pins the level → admission-policy map.
func TestLevelPolicyMapping(t *testing.T) {
	if LevelAdmitAll.Policy() != backend.AdmitReject ||
		LevelTailDrop.Policy() != backend.AdmitTailDrop ||
		LevelPushOut.Policy() != backend.AdmitPushOut ||
		LevelShed.Policy() != backend.AdmitPushOut {
		t.Fatal("level → policy mapping changed")
	}
}

// TestDeadlineHelpers: budget arithmetic, Never saturation, and the
// WithDeadline loop surfacing core.ErrDeadline.
func TestDeadlineHelpers(t *testing.T) {
	w := &clock.Wall{}
	w.AdvanceTo(100)
	if d := Deadline(w, 50); d != 150 {
		t.Fatalf("Deadline = %v, want 150", d)
	}
	if d := Deadline(w, clock.Never); d != clock.Never {
		t.Fatalf("overflowing Deadline = %v, want Never", d)
	}
	if Expired(w, 0) || Expired(w, clock.Never) || Expired(w, 100) {
		t.Fatal("zero/Never/now deadlines must not read as expired")
	}
	if !Expired(w, 99) {
		t.Fatal("past deadline not expired")
	}

	// The step advances the clock but never completes: the wrapper must
	// return ErrDeadline rather than spin.
	calls := 0
	err := WithDeadline(w, 10, func() (bool, error) {
		calls++
		w.Advance(4)
		return false, nil
	})
	if !errors.Is(err, core.ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if calls == 0 || calls > 4 {
		t.Fatalf("step ran %d times under a 10-tick budget at 4 ticks/step", calls)
	}

	// Completion and step errors pass through.
	if err := WithDeadline(w, 10, func() (bool, error) { return true, nil }); err != nil {
		t.Fatalf("completed loop returned %v", err)
	}
	sentinel := errors.New("boom")
	if err := WithDeadline(w, 10, func() (bool, error) { return false, sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("step error lost: %v", err)
	}
}
