package timewheel

import (
	"encoding/binary"
	"testing"

	"pieo/internal/clock"
)

// FuzzTimeWheel drives random insert/remove/update/advance
// interleavings from the fuzz input and asserts, against a brute-force
// oracle, that NextWake() is always the exact minimum send_time of the
// resident ineligible (send_time > now) elements, that MinSendTime()
// is the exact resident minimum, and that the structural invariants
// hold after every operation.
func FuzzTimeWheel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0x10, 0xff, 0x00, 0x42, 0x99, 0x01, 0x02})
	seed := make([]byte, 0, 64)
	for i := 0; i < 16; i++ {
		seed = append(seed, byte(i*37), byte(255-i), byte(i))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		// A deliberately tiny, coarse wheel so the fuzzer reaches window
		// slides and both overflow regions within a few operations.
		w := New(Config{SlotShift: 2, Slots: 64, Hint: 8})
		res := map[int32]clock.Time{}
		var handles []int32

		u16 := func(i int) uint64 {
			if i+1 < len(data) {
				return uint64(binary.LittleEndian.Uint16(data[i:]))
			}
			return 0
		}
		// decodeTime stretches 2 bytes across the full clock domain:
		// small values, granule-scaled values, and the Never edge.
		decodeTime := func(i int) clock.Time {
			v := u16(i)
			switch v & 3 {
			case 0:
				return clock.Time(v >> 2)
			case 1:
				return clock.Time((v >> 2) << 7)
			case 2:
				return clock.Time((v >> 2) << 44)
			default:
				return clock.Never - clock.Time(v>>2)
			}
		}

		now := clock.Time(0)
		for i := 0; i+2 < len(data); i += 3 {
			switch op := data[i] & 3; {
			case op == 0 || len(handles) == 0:
				tm := decodeTime(i + 1)
				h := w.Insert(tm)
				res[h] = tm
				handles = append(handles, h)
			case op == 1:
				j := int(u16(i+1)) % len(handles)
				h := handles[j]
				w.Remove(h)
				delete(res, h)
				handles[j] = handles[len(handles)-1]
				handles = handles[:len(handles)-1]
			case op == 2:
				j := int(data[i+1]) % len(handles)
				h := handles[j]
				nt := decodeTime(i + 2)
				w.Update(h, nt)
				res[h] = nt
			default:
				now += clock.Time(u16(i + 1))
				w.Advance(now)
			}

			if err := w.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if w.Len() != len(res) {
				t.Fatalf("Len = %d, oracle %d", w.Len(), len(res))
			}

			// Oracle: exact min over residents, and exact min above now.
			oMin, oOK := clock.Never, false
			oWake := clock.Never
			for _, tm := range res {
				oOK = true
				if tm < oMin {
					oMin = tm
				}
				if tm > w.Now() && tm < oWake {
					oWake = tm
				}
			}
			if got := w.NextWake(); got != oWake {
				t.Fatalf("NextWake at %d = %d, oracle %d (residents %v)", w.Now(), got, oWake, res)
			}
			gm, gok := w.MinSendTime()
			if gok != oOK || (gok && gm != oMin) {
				t.Fatalf("MinSendTime = (%d,%v), oracle (%d,%v)", gm, gok, oMin, oOK)
			}
		}
	})
}
