// Package timewheel implements the hierarchical timing-wheel
// eligibility index: a structure that tracks every queued element's
// send_time and answers, in O(1), "what is the earliest send_time?"
// (MinSendTime) and "when does the next ineligible element become
// eligible?" (NextWakeAfter). The rank structures (core.List's
// sublists, the cFFS bucket queue) stay authoritative for dequeue
// order; the wheel is a secondary index on the *time* axis, the same
// role Carousel's timing wheel plays beside the flow table and the one
// Eiffel's gradient-queue discussion motivates (PAPERS.md).
//
// Layout. Time is quantized into granules of 2^shift ticks. A CIRCULAR
// WINDOW of S (power-of-two) consecutive granules [winLo, winLo+S) maps
// granule g to physical slot g&(S-1) — winLo-independent, exactly the
// cFFS trick, so sliding the window forward moves no data. Each slot
// keeps an unordered intrusive doubly-linked chain of resident
// elements plus an exact chain minimum and a count of how many chain
// nodes hold that minimum (the equal-min count means removing one of
// many identical send_times — e.g. a pile of clock.Always — never
// rescans). A three-level uint64 bitmap hierarchy (l0: one bit per
// slot; l1/l2 summaries) finds the first occupied slot at or after a
// granule in a handful of TrailingZeros64 calls.
//
// Times that fall outside the window land in one of two unsorted
// overflow regions — `low` (typically past/eligible granules behind
// the window) and `high` (beyond the horizon) — each with the same
// exact min + equal-min count discipline. Exactness NEVER depends on
// the window geometry: a mis-sized window only moves elements into the
// overflow regions, where queries still see their exact minimum and
// fall back to an O(region) chain scan only when the region minimum is
// already eligible. clock.Never quantizes into `high` and naturally
// reports "no wake".
//
// Elements are identified by int32 handles into an internal arena
// (free-list recycled, so steady-state operation is allocation-free).
// Callers store the handle next to the element — core.List in its
// element struct, cFFS in its cnode — avoiding any hash lookup on the
// hot path.
package timewheel

import (
	"fmt"
	"math/bits"

	"pieo/internal/clock"
)

const (
	// DefaultSlotShift is log2 ticks per granule: 2^10 = 1024 ticks
	// (≈1 µs at nanosecond resolution), a granularity under which the
	// default window spans tens of milliseconds of pacing horizon.
	DefaultSlotShift = 10

	// minSlots/maxSlots clamp the derived window so tiny lists stay
	// tiny (16 KiB) and huge ones stay cache-sane (1 MiB).
	minSlots = 1 << 10
	maxSlots = 1 << 16

	none = int32(-1)

	locFree = int32(-1)
	locLow  = int32(-2)
	locHigh = int32(-3)
)

// node is one indexed element: its send_time, intrusive chain links,
// and where it lives (physical slot >= 0, or a loc* region sentinel).
type node struct {
	t          uint64
	next, prev int32
	loc        int32
}

// region is an unsorted overflow chain with an exact minimum and the
// count of chain nodes holding it.
type region struct {
	head  int32
	count int
	min   uint64
	minN  int
}

// Config sizes a Wheel.
type Config struct {
	// SlotShift is log2 ticks per granule. Zero means DefaultSlotShift;
	// pass a negative value for an explicit shift of 0 (1 tick/slot).
	SlotShift int
	// Slots is the window size in granules; must be a power of two
	// >= 64. Zero derives it from Hint.
	Slots int
	// Hint is the expected resident element count; it pre-sizes the
	// node arena and (when Slots is zero) the window.
	Hint int
}

// Wheel is the timing-wheel index. Not safe for concurrent use — it
// lives inside a structure that is already externally locked (a shard
// backend under the engine's per-shard mutex, or SyncList's).
type Wheel struct {
	shift uint
	slots int
	mask  uint64
	winLo uint64 // granule at the window start
	now   clock.Time

	head    []int32
	slotMin []uint64 // exact chain min per slot; clock.Never when empty
	minN    []int32  // how many chain nodes hold slotMin
	l0      []uint64 // one bit per slot: set ⇔ chain nonempty
	l1, l2  []uint64

	low, high region

	slotCount int // residents in window slots
	size      int

	nodes []node
	free  []int32
}

// New creates a wheel from cfg (see Config for defaults).
func New(cfg Config) *Wheel {
	shift := cfg.SlotShift
	switch {
	case shift == 0:
		shift = DefaultSlotShift
	case shift < 0:
		shift = 0
	}
	if shift > 32 {
		panic(fmt.Sprintf("timewheel: slot shift %d out of range [0,32]", shift))
	}
	slots := cfg.Slots
	if slots == 0 {
		slots = minSlots
		for slots < maxSlots && slots < 4*cfg.Hint {
			slots <<= 1
		}
	}
	if slots < 64 || slots&(slots-1) != 0 {
		panic(fmt.Sprintf("timewheel: slots must be a power of two >= 64, got %d", slots))
	}
	words0 := slots / 64
	words1 := (words0 + 63) / 64
	words2 := (words1 + 63) / 64
	w := &Wheel{
		shift:   uint(shift),
		slots:   slots,
		mask:    uint64(slots - 1),
		head:    make([]int32, slots),
		slotMin: make([]uint64, slots),
		minN:    make([]int32, slots),
		l0:      make([]uint64, words0),
		l1:      make([]uint64, words1),
		l2:      make([]uint64, words2),
		low:     region{head: none, min: uint64(clock.Never)},
		high:    region{head: none, min: uint64(clock.Never)},
	}
	if cfg.Hint > 0 {
		w.nodes = make([]node, 0, cfg.Hint)
		w.free = make([]int32, 0, 16)
	}
	for i := range w.head {
		w.head[i] = none
		w.slotMin[i] = uint64(clock.Never)
	}
	return w
}

// Len returns the number of indexed elements.
func (w *Wheel) Len() int { return w.size }

// Now returns the wheel's advanced time.
func (w *Wheel) Now() clock.Time { return w.now }

// TimeOf returns the send_time handle h was inserted (or last updated)
// with. It panics on a dead handle.
func (w *Wheel) TimeOf(h int32) clock.Time { return clock.Time(w.node(h).t) }

// maxWinLo is the largest window base that keeps granule reconstruction
// (winLo + delta) inside the granule domain.
func (w *Wheel) maxWinLo() uint64 {
	return (^uint64(0) >> w.shift) - uint64(w.slots)
}

func (w *Wheel) inWindow(g uint64) bool { return g-w.winLo < uint64(w.slots) }

// vbAt reconstructs the granule of physical slot p under the current
// window.
func (w *Wheel) vbAt(p int) uint64 {
	return w.winLo + ((uint64(p) - w.winLo) & w.mask)
}

func (w *Wheel) node(h int32) *node {
	if h < 0 || int(h) >= len(w.nodes) || w.nodes[h].loc == locFree {
		panic(fmt.Sprintf("timewheel: dead handle %d", h))
	}
	return &w.nodes[h]
}

func (w *Wheel) alloc(t uint64) int32 {
	if n := len(w.free); n > 0 {
		h := w.free[n-1]
		w.free = w.free[:n-1]
		w.nodes[h] = node{t: t, next: none, prev: none}
		return h
	}
	w.nodes = append(w.nodes, node{t: t, next: none, prev: none})
	return int32(len(w.nodes) - 1)
}

// Insert indexes an element with send_time t and returns its handle.
func (w *Wheel) Insert(t clock.Time) int32 {
	h := w.alloc(uint64(t))
	w.place(h)
	w.size++
	return h
}

// Remove drops handle h from the index.
func (w *Wheel) Remove(h int32) {
	w.unlink(h)
	w.nodes[h].loc = locFree
	w.free = append(w.free, h)
	w.size--
}

// Update changes handle h's send_time to t, keeping the handle valid.
func (w *Wheel) Update(h int32, t clock.Time) {
	w.unlink(h)
	n := &w.nodes[h]
	n.t = uint64(t)
	n.next, n.prev = none, none
	w.place(h)
}

// Advance moves the wheel's notion of current time forward (backwards
// moves are ignored — the wheel is monotonic, like clock.Wall).
func (w *Wheel) Advance(now clock.Time) {
	if now > w.now {
		w.now = now
	}
}

// place routes node h into a window slot or an overflow region,
// sliding the window forward when the occupied span allows.
func (w *Wheel) place(h int32) {
	n := &w.nodes[h]
	g := n.t >> w.shift
	switch {
	case w.slotCount == 0 && g <= w.maxWinLo():
		// Empty window: snap it to g, keeping slots/8 of back-slack so
		// slightly-earlier inserts still land in a slot.
		lo := uint64(0)
		if back := uint64(w.slots) >> 3; g > back {
			lo = g - back
		}
		w.winLo = lo
		w.slotInsert(h, g)
	case w.inWindow(g):
		w.slotInsert(h, g)
	case g < w.winLo:
		// Below the window start: re-anchor the window so g lands in a
		// slot. The window must track the DRAIN FRONT — the min end is
		// where dequeues concentrate, and an element stranded in an
		// overflow region there turns every min removal into an
		// O(region) rescan.
		w.reanchorDown(g)
		w.slotInsert(h, g)
	default:
		// Beyond the window end: slide forward when every resident slot
		// still fits behind g (winLo only ever moves forward, so slot
		// residents and their bitmap positions stay valid).
		if w.slotCount > 0 {
			newLo := g - uint64(w.slots) + 1
			if g-w.firstOccGranule() < uint64(w.slots) && newLo <= w.maxWinLo() {
				w.winLo = newLo
				w.slotInsert(h, g)
				return
			}
		}
		n.loc = locHigh
		w.regionInsert(&w.high, h)
	}
}

// reanchorDown moves the window start down to cover granule g < winLo.
// When the resident span still fits a window anchored at g the move is
// free: the physical mapping (granule&mask) and the occupancy bitmaps
// are winLo-independent, so repositioning is just the winLo store.
// Otherwise residents past the new top are evicted to the high region —
// they are far from the drain front, where chain membership is cheap
// (an eviction is O(1) per node and each migrates back through refill
// at most once per window rotation). Callers guarantee slotCount > 0
// (an empty window snaps in place()).
func (w *Wheel) reanchorDown(g uint64) {
	newTop := g + uint64(w.slots)
	if last := w.lastOccGranule(); last < newTop {
		lo := g
		if back := uint64(w.slots) >> 3; g > back && last-(g-back) < uint64(w.slots) {
			lo = g - back
		}
		w.winLo = lo
		return
	}
	for p := w.nextSet(0, w.slots); p >= 0; p = w.nextSet(p+1, w.slots) {
		if w.vbAt(p) < newTop {
			continue
		}
		for at := w.head[p]; at != none; {
			next := w.nodes[at].next
			n := &w.nodes[at]
			n.next, n.prev = none, none
			n.loc = locHigh
			w.regionInsert(&w.high, at)
			w.slotCount--
			at = next
		}
		w.head[p] = none
		w.slotMin[p], w.minN[p] = uint64(clock.Never), 0
		w.clearBit(p)
	}
	w.winLo = g
}

// refill re-anchors a drained window at the overflow minimum and pulls
// every region node that now fits into its slot, so the drain front
// keeps O(1) removals as it works through a horizon wider than the
// window. Each node migrates out of a region at most once per window
// rotation, amortizing the walk against the removals that emptied the
// window. A horizon of pure clock.Never residents stays regional: no
// finite anchor exists and their equal-min counts already make
// removals O(1).
func (w *Wheel) refill() {
	m := w.low.min
	if w.high.count > 0 && (w.low.count == 0 || w.high.min < m) {
		m = w.high.min
	}
	g := m >> w.shift
	if g > w.maxWinLo() {
		return
	}
	lo := uint64(0)
	if back := uint64(w.slots) >> 3; g > back {
		lo = g - back
	}
	w.winLo = lo
	w.drainRegion(&w.low)
	w.drainRegion(&w.high)
}

// drainRegion re-places every node of r: into a window slot when its
// granule fits, back into the HIGH region otherwise. After a refill the
// low region is always empty — the new window start sits at or below
// every regional granule.
func (w *Wheel) drainRegion(r *region) {
	head := r.head
	*r = region{head: none, min: uint64(clock.Never)}
	for at := head; at != none; {
		next := w.nodes[at].next
		n := &w.nodes[at]
		n.next, n.prev = none, none
		if g := n.t >> w.shift; w.inWindow(g) {
			w.slotInsert(at, g)
		} else {
			n.loc = locHigh
			w.regionInsert(&w.high, at)
		}
		at = next
	}
}

// unlink detaches node h from whatever container holds it, leaving the
// node itself allocated.
func (w *Wheel) unlink(h int32) {
	switch n := w.node(h); n.loc {
	case locLow:
		w.regionRemove(&w.low, h)
	case locHigh:
		w.regionRemove(&w.high, h)
	default:
		w.slotRemove(h)
	}
}

// --- Window slots ---

func (w *Wheel) slotInsert(h int32, g uint64) {
	p := int(g & w.mask)
	n := &w.nodes[h]
	n.loc = int32(p)
	n.prev = none
	n.next = w.head[p]
	if w.head[p] == none {
		w.setBit(p)
		w.slotMin[p], w.minN[p] = n.t, 1
	} else {
		w.nodes[w.head[p]].prev = h
		if n.t < w.slotMin[p] {
			w.slotMin[p], w.minN[p] = n.t, 1
		} else if n.t == w.slotMin[p] {
			w.minN[p]++
		}
	}
	w.head[p] = h
	w.slotCount++
}

func (w *Wheel) slotRemove(h int32) {
	n := &w.nodes[h]
	p := int(n.loc)
	if n.prev != none {
		w.nodes[n.prev].next = n.next
	} else {
		w.head[p] = n.next
	}
	if n.next != none {
		w.nodes[n.next].prev = n.prev
	}
	w.slotCount--
	if w.head[p] == none {
		w.clearBit(p)
		w.slotMin[p], w.minN[p] = uint64(clock.Never), 0
		if w.slotCount == 0 && w.low.count+w.high.count > 0 {
			w.refill()
		}
		return
	}
	if n.t == w.slotMin[p] {
		if w.minN[p]--; w.minN[p] == 0 {
			m, c := uint64(clock.Never), int32(0)
			for at := w.head[p]; at != none; at = w.nodes[at].next {
				switch t := w.nodes[at].t; {
				case t < m:
					m, c = t, 1
				case t == m:
					c++
				}
			}
			w.slotMin[p], w.minN[p] = m, c
		}
	}
}

// --- Overflow regions ---

func (w *Wheel) regionInsert(r *region, h int32) {
	n := &w.nodes[h]
	n.prev = none
	n.next = r.head
	if r.head != none {
		w.nodes[r.head].prev = h
	}
	r.head = h
	switch {
	case r.count == 0 || n.t < r.min:
		r.min, r.minN = n.t, 1
	case n.t == r.min:
		r.minN++
	}
	r.count++
}

func (w *Wheel) regionRemove(r *region, h int32) {
	n := &w.nodes[h]
	if n.prev != none {
		w.nodes[n.prev].next = n.next
	} else {
		r.head = n.next
	}
	if n.next != none {
		w.nodes[n.next].prev = n.prev
	}
	r.count--
	if n.t == r.min {
		if r.minN--; r.minN == 0 {
			m, c := uint64(clock.Never), 0
			for at := r.head; at != none; at = w.nodes[at].next {
				switch t := w.nodes[at].t; {
				case t < m:
					m, c = t, 1
				case t == m:
					c++
				}
			}
			r.min, r.minN = m, c
		}
	}
}

// --- Bitmap hierarchy ---

func (w *Wheel) setBit(p int) {
	w0 := p >> 6
	if w.l0[w0] == 0 {
		w1 := w0 >> 6
		if w.l1[w1] == 0 {
			w.l2[w1>>6] |= 1 << uint(w1&63)
		}
		w.l1[w1] |= 1 << uint(w0&63)
	}
	w.l0[w0] |= 1 << uint(p&63)
}

func (w *Wheel) clearBit(p int) {
	w0 := p >> 6
	w.l0[w0] &^= 1 << uint(p&63)
	if w.l0[w0] == 0 {
		w1 := w0 >> 6
		w.l1[w1] &^= 1 << uint(w0&63)
		if w.l1[w1] == 0 {
			w.l2[w1>>6] &^= 1 << uint(w1&63)
		}
	}
}

// maskFrom is the uint64 with every bit at or above `bit` set.
func maskFrom(bit int) uint64 { return ^uint64(0) << uint(bit) }

// nextSet returns the smallest set physical slot in [from, limit), or
// -1, descending the hierarchy with TrailingZeros64.
func (w *Wheel) nextSet(from, limit int) int {
	if from >= limit {
		return -1
	}
	w0 := from >> 6
	if m := w.l0[w0] & maskFrom(from&63); m != 0 {
		if p := w0<<6 + bits.TrailingZeros64(m); p < limit {
			return p
		}
		return -1
	}
	w1 := w0 >> 6
	m1 := w.l1[w1] & maskFrom(w0&63) & ^(uint64(1) << uint(w0&63))
	if m1 == 0 {
		w2 := w1 >> 6
		m2 := w.l2[w2] & maskFrom(w1&63) & ^(uint64(1) << uint(w1&63))
		for m2 == 0 {
			w2++
			if w2 >= len(w.l2) {
				return -1
			}
			m2 = w.l2[w2]
		}
		w1 = w2<<6 + bits.TrailingZeros64(m2)
		m1 = w.l1[w1]
	}
	w0 = w1<<6 + bits.TrailingZeros64(m1)
	p := w0<<6 + bits.TrailingZeros64(w.l0[w0])
	if p < limit {
		return p
	}
	return -1
}

// firstOccPhys returns the physical slot of the smallest occupied
// granule. Ascending granule order wraps at phys(winLo): it is phys
// [p0, S) then [0, p0). Caller guarantees slotCount > 0.
func (w *Wheel) firstOccPhys() int {
	p0 := int(w.winLo & w.mask)
	if p := w.nextSet(p0, w.slots); p >= 0 {
		return p
	}
	return w.nextSet(0, p0)
}

func (w *Wheel) firstOccGranule() uint64 { return w.vbAt(w.firstOccPhys()) }

// maskTo is the uint64 with every bit at or below `bit` set.
func maskTo(bit int) uint64 { return ^uint64(0) >> uint(63-bit) }

// prevSet returns the largest set physical slot in [limit, from], or
// -1, descending the hierarchy with LeadingZeros64 — nextSet's mirror.
func (w *Wheel) prevSet(from, limit int) int {
	if from < limit {
		return -1
	}
	w0 := from >> 6
	if m := w.l0[w0] & maskTo(from&63); m != 0 {
		if p := w0<<6 + 63 - bits.LeadingZeros64(m); p >= limit {
			return p
		}
		return -1
	}
	w1 := w0 >> 6
	m1 := w.l1[w1] & maskTo(w0&63) & ^(uint64(1) << uint(w0&63))
	if m1 == 0 {
		w2 := w1 >> 6
		m2 := w.l2[w2] & maskTo(w1&63) & ^(uint64(1) << uint(w1&63))
		for m2 == 0 {
			w2--
			if w2 < 0 {
				return -1
			}
			m2 = w.l2[w2]
		}
		w1 = w2<<6 + 63 - bits.LeadingZeros64(m2)
		m1 = w.l1[w1]
	}
	w0 = w1<<6 + 63 - bits.LeadingZeros64(m1)
	p := w0<<6 + 63 - bits.LeadingZeros64(w.l0[w0])
	if p >= limit {
		return p
	}
	return -1
}

// lastOccPhys returns the physical slot of the largest occupied granule.
// Descending granule order wraps at phys(winLo): it is phys [p0-1 .. 0]
// then [S-1 .. p0]. Caller guarantees slotCount > 0.
func (w *Wheel) lastOccPhys() int {
	p0 := int(w.winLo & w.mask)
	if p0 > 0 {
		if p := w.prevSet(p0-1, 0); p >= 0 {
			return p
		}
	}
	return w.prevSet(w.slots-1, p0)
}

func (w *Wheel) lastOccGranule() uint64 { return w.vbAt(w.lastOccPhys()) }

// firstOccFrom returns the physical slot of the smallest occupied
// granule >= g, or -1. The circular virtual range splits into at most
// two linear bitmap scans around the wrap point phys(winLo).
func (w *Wheel) firstOccFrom(g uint64) int {
	if g < w.winLo {
		g = w.winLo
	}
	if g-w.winLo >= uint64(w.slots) {
		return -1
	}
	p0 := int(g & w.mask)
	wrap := int(w.winLo & w.mask)
	if p0 >= wrap {
		if p := w.nextSet(p0, w.slots); p >= 0 {
			return p
		}
		return w.nextSet(0, wrap)
	}
	return w.nextSet(p0, wrap)
}

// --- Queries ---

// minChainAbove folds min(t) over chain nodes with t > now into best.
func (w *Wheel) minChainAbove(head int32, now, best uint64) uint64 {
	for at := head; at != none; at = w.nodes[at].next {
		if t := w.nodes[at].t; t > now && t < best {
			best = t
		}
	}
	return best
}

// NextWakeAfter returns the exact smallest send_time strictly greater
// than now among indexed elements, or clock.Never when none exists —
// the instant the next currently-ineligible element becomes eligible.
// O(1) plus the chain of now's own granule; overflow regions cost a
// scan only when their minimum is already eligible.
func (w *Wheel) NextWakeAfter(now clock.Time) clock.Time {
	un := uint64(now)
	best := uint64(clock.Never)
	if w.low.count > 0 {
		if w.low.min > un {
			if w.low.min < best {
				best = w.low.min
			}
		} else {
			best = w.minChainAbove(w.low.head, un, best)
		}
	}
	if w.slotCount > 0 {
		switch g := un >> w.shift; {
		case g < w.winLo:
			// Every slot resident is at granule >= winLo > g, hence > now.
			if m := w.slotMin[w.firstOccPhys()]; m < best {
				best = m
			}
		case g-w.winLo < uint64(w.slots):
			// Boundary granule: mixed eligibility, scan its one chain.
			if p := int(g & w.mask); w.head[p] != none && w.vbAt(p) == g {
				best = w.minChainAbove(w.head[p], un, best)
			}
			// Strictly-later granules: first occupied slot's exact min.
			if np := w.firstOccFrom(g + 1); np >= 0 && w.slotMin[np] < best {
				best = w.slotMin[np]
			}
		}
		// g beyond the window end: every slot resident is <= now.
	}
	if w.high.count > 0 {
		if w.high.min > un {
			if w.high.min < best {
				best = w.high.min
			}
		} else {
			best = w.minChainAbove(w.high.head, un, best)
		}
	}
	return clock.Time(best)
}

// NextWake is NextWakeAfter at the wheel's advanced time.
func (w *Wheel) NextWake() clock.Time { return w.NextWakeAfter(w.now) }

// MinSendTime returns the exact smallest send_time among indexed
// elements in O(1); ok is false when the wheel is empty.
func (w *Wheel) MinSendTime() (clock.Time, bool) {
	if w.size == 0 {
		return 0, false
	}
	m := uint64(clock.Never)
	if w.low.count > 0 {
		m = w.low.min
	}
	if w.slotCount > 0 {
		if sm := w.slotMin[w.firstOccPhys()]; sm < m {
			m = sm
		}
	}
	if w.high.count > 0 && w.high.min < m {
		m = w.high.min
	}
	return clock.Time(m), true
}

// --- Invariants ---

// CheckInvariants validates the complete structure: chain link
// integrity, bitmap hierarchy vs chains, exact slot/region minima and
// equal-min counts, slot granule membership, and arena conservation.
func (w *Wheel) CheckInvariants() error {
	seen := 0
	for p := 0; p < w.slots; p++ {
		occupied := w.l0[p>>6]&(1<<uint(p&63)) != 0
		if occupied != (w.head[p] != none) {
			return fmt.Errorf("timewheel: slot %d bit %v but head %d", p, occupied, w.head[p])
		}
		if !occupied {
			if w.slotMin[p] != uint64(clock.Never) || w.minN[p] != 0 {
				return fmt.Errorf("timewheel: empty slot %d has min %d count %d", p, w.slotMin[p], w.minN[p])
			}
			continue
		}
		g := w.vbAt(p)
		m, c := uint64(clock.Never), int32(0)
		prev := none
		for at := w.head[p]; at != none; at = w.nodes[at].next {
			n := &w.nodes[at]
			if n.loc != int32(p) {
				return fmt.Errorf("timewheel: node %d in slot %d claims loc %d", at, p, n.loc)
			}
			if n.prev != prev {
				return fmt.Errorf("timewheel: slot %d chain prev broken at node %d", p, at)
			}
			if n.t>>w.shift != g {
				return fmt.Errorf("timewheel: node %d (t=%d) in slot %d for granule %d", at, n.t, p, g)
			}
			switch {
			case n.t < m:
				m, c = n.t, 1
			case n.t == m:
				c++
			}
			prev = at
			seen++
		}
		if w.slotMin[p] != m || w.minN[p] != c {
			return fmt.Errorf("timewheel: slot %d summary (%d,%d), chain (%d,%d)", p, w.slotMin[p], w.minN[p], m, c)
		}
	}
	if seen != w.slotCount {
		return fmt.Errorf("timewheel: slots hold %d nodes, slotCount %d", seen, w.slotCount)
	}
	for w0 := range w.l0 {
		w1 := w0 >> 6
		if got := w.l1[w1]&(1<<uint(w0&63)) != 0; got != (w.l0[w0] != 0) {
			return fmt.Errorf("timewheel: l1 bit for word %d = %v, l0 word %#x", w0, got, w.l0[w0])
		}
		if got := w.l2[w1>>6]&(1<<uint(w1&63)) != 0; got != (w.l1[w1] != 0) {
			return fmt.Errorf("timewheel: l2 bit for l1 word %d mismatch", w1)
		}
	}
	for name, r, loc := "low", &w.low, locLow; ; name, r, loc = "high", &w.high, locHigh {
		m, c, cnt := uint64(clock.Never), 0, 0
		prev := none
		for at := r.head; at != none; at = w.nodes[at].next {
			n := &w.nodes[at]
			if n.loc != loc {
				return fmt.Errorf("timewheel: node %d in %s region claims loc %d", at, name, n.loc)
			}
			if n.prev != prev {
				return fmt.Errorf("timewheel: %s chain prev broken at node %d", name, at)
			}
			switch {
			case n.t < m:
				m, c = n.t, 1
			case n.t == m:
				c++
			}
			prev = at
			cnt++
		}
		if cnt != r.count {
			return fmt.Errorf("timewheel: %s chain holds %d nodes, count %d", name, cnt, r.count)
		}
		if r.count > 0 && (r.min != m || r.minN != c) {
			return fmt.Errorf("timewheel: %s summary (%d,%d), chain (%d,%d)", name, r.min, r.minN, m, c)
		}
		if name == "high" {
			break
		}
	}
	if total := w.slotCount + w.low.count + w.high.count; total != w.size {
		return fmt.Errorf("timewheel: containers hold %d nodes, size %d", total, w.size)
	}
	if live := len(w.nodes) - len(w.free); live != w.size {
		return fmt.Errorf("timewheel: arena holds %d live nodes, size %d", live, w.size)
	}
	for _, h := range w.free {
		if w.nodes[h].loc != locFree {
			return fmt.Errorf("timewheel: free-list node %d has loc %d", h, w.nodes[h].loc)
		}
	}
	return nil
}
