package timewheel

import (
	"math/rand"
	"testing"

	"pieo/internal/clock"
)

// check runs CheckInvariants and fails the test on error.
func check(t *testing.T, w *Wheel) {
	t.Helper()
	if err := w.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// oracleNextAfter is the reference NextWakeAfter: exact min t > now.
func oracleNextAfter(res map[int32]clock.Time, now clock.Time) clock.Time {
	best := clock.Never
	for _, t := range res {
		if t > now && t < best {
			best = t
		}
	}
	return best
}

// oracleMin is the reference MinSendTime.
func oracleMin(res map[int32]clock.Time) (clock.Time, bool) {
	if len(res) == 0 {
		return 0, false
	}
	m := clock.Never
	for _, t := range res {
		if t < m {
			m = t
		}
	}
	return m, true
}

// verify compares every wheel query against the oracle.
func verify(t *testing.T, w *Wheel, res map[int32]clock.Time, nows []clock.Time) {
	t.Helper()
	check(t, w)
	if w.Len() != len(res) {
		t.Fatalf("Len = %d, oracle %d", w.Len(), len(res))
	}
	gotM, gotOK := w.MinSendTime()
	wantM, wantOK := oracleMin(res)
	if gotM != wantM || gotOK != wantOK {
		t.Fatalf("MinSendTime = (%d,%v), oracle (%d,%v)", gotM, gotOK, wantM, wantOK)
	}
	for _, now := range nows {
		if got, want := w.NextWakeAfter(now), oracleNextAfter(res, now); got != want {
			t.Fatalf("NextWakeAfter(%d) = %d, oracle %d", now, got, want)
		}
	}
	for h, tm := range res {
		if got := w.TimeOf(h); got != tm {
			t.Fatalf("TimeOf(%d) = %d, inserted %d", h, got, tm)
		}
	}
}

func TestWheelBasic(t *testing.T) {
	w := New(Config{SlotShift: 4, Slots: 64, Hint: 16})
	res := map[int32]clock.Time{}
	for _, tm := range []clock.Time{100, 50, 50, 200, 3} {
		res[w.Insert(tm)] = tm
	}
	verify(t, w, res, []clock.Time{0, 2, 3, 49, 50, 99, 100, 199, 200, 1000})

	// Remove one of the two equal 50s: the other must keep the summary.
	for h, tm := range res {
		if tm == 50 {
			w.Remove(h)
			delete(res, h)
			break
		}
	}
	verify(t, w, res, []clock.Time{0, 3, 49, 50, 100, 200})

	// Drain.
	for h := range res {
		w.Remove(h)
		delete(res, h)
	}
	verify(t, w, res, []clock.Time{0, 100})
	if got := w.NextWakeAfter(0); got != clock.Never {
		t.Fatalf("empty NextWakeAfter = %d, want Never", got)
	}
}

func TestWheelAlwaysPile(t *testing.T) {
	// A pile of clock.Always elements: equal-min counts mean removals
	// never rescan, and no wake is ever reported for them.
	w := New(Config{Hint: 64})
	var hs []int32
	for i := 0; i < 64; i++ {
		hs = append(hs, w.Insert(clock.Always))
	}
	check(t, w)
	if got := w.NextWakeAfter(0); got != clock.Never {
		t.Fatalf("NextWakeAfter over Always pile = %d, want Never", got)
	}
	if m, ok := w.MinSendTime(); !ok || m != clock.Always {
		t.Fatalf("MinSendTime = (%d,%v), want (Always,true)", m, ok)
	}
	for _, h := range hs {
		w.Remove(h)
	}
	check(t, w)
}

func TestWheelWindowSlide(t *testing.T) {
	// Monotonically advancing send_times must keep landing in slots
	// (the window slides forward as earlier granules drain), exercising
	// the circular mapping across many window generations.
	w := New(Config{SlotShift: 4, Slots: 64, Hint: 8})
	res := map[int32]clock.Time{}
	tm := clock.Time(0)
	for round := 0; round < 200; round++ {
		for i := 0; i < 4; i++ {
			tm += 97
			res[w.Insert(tm)] = tm
		}
		// Remove the four oldest: occupancy (and the resident time span)
		// stays bounded well inside the 64*16-tick window.
		for n := 0; n < 4; n++ {
			var oh int32
			ot := clock.Never
			for h, ht := range res {
				if ht < ot {
					oh, ot = h, ht
				}
			}
			w.Remove(oh)
			delete(res, oh)
		}
		verify(t, w, res, []clock.Time{tm - 500, tm - 97, tm, tm + 1})
	}
	if w.low.count != 0 || w.high.count != 0 {
		t.Fatalf("forward-moving workload overflowed: low %d high %d", w.low.count, w.high.count)
	}
}

func TestWheelOverflowRegions(t *testing.T) {
	w := New(Config{SlotShift: 4, Slots: 64, Hint: 8})
	res := map[int32]clock.Time{}
	// Anchor the window high, then force low and high overflow.
	anchor := clock.Time(1 << 20)
	res[w.Insert(anchor)] = anchor
	for _, tm := range []clock.Time{0, 5, 1 << 30, clock.Never - 1, clock.Never} {
		res[w.Insert(tm)] = tm
	}
	verify(t, w, res, []clock.Time{0, 4, 5, anchor - 1, anchor, 1 << 30, clock.Never - 2, clock.Never - 1, clock.Never})
	// Remove the overflow minima one by one; summaries must stay exact.
	for _, victim := range []clock.Time{0, 1 << 30, 5} {
		for h, ht := range res {
			if ht == victim {
				w.Remove(h)
				delete(res, h)
				break
			}
		}
		verify(t, w, res, []clock.Time{0, 5, anchor, 1 << 30, clock.Never - 1, clock.Never})
	}
}

func TestWheelNeverSentinel(t *testing.T) {
	// clock.Never residents must never produce a wake and must not
	// disturb exactness near the top of the time domain.
	w := New(Config{Hint: 4})
	hn := w.Insert(clock.Never)
	check(t, w)
	if got := w.NextWakeAfter(0); got != clock.Never {
		t.Fatalf("NextWakeAfter with only Never = %d, want Never", got)
	}
	if m, ok := w.MinSendTime(); !ok || m != clock.Never {
		t.Fatalf("MinSendTime = (%d,%v), want (Never,true)", m, ok)
	}
	h1 := w.Insert(clock.Never - 1)
	if got := w.NextWakeAfter(clock.Never - 2); got != clock.Never-1 {
		t.Fatalf("NextWakeAfter(Never-2) = %d, want Never-1", got)
	}
	if got := w.NextWakeAfter(clock.Never - 1); got != clock.Never {
		t.Fatalf("NextWakeAfter(Never-1) = %d, want Never", got)
	}
	if got := w.NextWakeAfter(clock.Never); got != clock.Never {
		t.Fatalf("NextWakeAfter(Never) = %d, want Never", got)
	}
	w.Remove(h1)
	w.Remove(hn)
	check(t, w)
}

func TestWheelAdvanceNearNever(t *testing.T) {
	// Driving the wheel clock to the top of the time domain must not
	// overflow the granule arithmetic: queries stay exact with now at
	// Never-k and residents straddling the sentinel.
	w := New(Config{SlotShift: 4, Slots: 64, Hint: 4})
	res := map[int32]clock.Time{}
	for _, tm := range []clock.Time{100, clock.Never - 3, clock.Never} {
		res[w.Insert(tm)] = tm
	}
	w.Advance(clock.Never - 4)
	if got := w.NextWake(); got != clock.Never-3 {
		t.Fatalf("NextWake at Never-4 = %d, want Never-3", got)
	}
	w.Advance(clock.Never - 3)
	if got := w.NextWake(); got != clock.Never {
		t.Fatalf("NextWake at Never-3 = %d, want Never (only sentinel residents remain ahead)", got)
	}
	w.Advance(clock.Never)
	if got := w.NextWake(); got != clock.Never {
		t.Fatalf("NextWake at Never = %d, want Never", got)
	}
	verify(t, w, res, []clock.Time{0, 99, 100, clock.Never - 4, clock.Never - 3, clock.Never})
	if m, ok := w.MinSendTime(); !ok || m != 100 {
		t.Fatalf("MinSendTime = (%d,%v), want (100,true) — advancing now must not drop residents", m, ok)
	}
}

func TestWheelUpdate(t *testing.T) {
	w := New(Config{SlotShift: 4, Slots: 64, Hint: 8})
	res := map[int32]clock.Time{}
	for _, tm := range []clock.Time{10, 20, 30} {
		res[w.Insert(tm)] = tm
	}
	for h := range res {
		nt := res[h] * 1000
		w.Update(h, nt)
		res[h] = nt
		verify(t, w, res, []clock.Time{0, 9, 10, 10000, 20000, 30000})
	}
	// Update back down below the window.
	for h := range res {
		w.Update(h, 1)
		res[h] = 1
		break
	}
	verify(t, w, res, []clock.Time{0, 1, 2, 30000})
}

func TestWheelAdvanceAndNextWake(t *testing.T) {
	w := New(Config{SlotShift: 4, Slots: 64})
	w.Insert(100)
	w.Insert(200)
	w.Advance(150)
	if w.Now() != 150 {
		t.Fatalf("Now = %d", w.Now())
	}
	if got := w.NextWake(); got != 200 {
		t.Fatalf("NextWake at 150 = %d, want 200", got)
	}
	w.Advance(40) // backwards: ignored
	if w.Now() != 150 {
		t.Fatalf("Now after backwards Advance = %d", w.Now())
	}
}

func TestWheelRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := New(Config{SlotShift: 3, Slots: 128, Hint: 32})
	res := map[int32]clock.Time{}
	var handles []int32
	for op := 0; op < 5000; op++ {
		switch r := rng.Intn(10); {
		case r < 5 || len(handles) == 0:
			var tm clock.Time
			switch rng.Intn(4) {
			case 0:
				tm = clock.Time(rng.Intn(1 << 12))
			case 1:
				tm = clock.Time(rng.Int63())
			case 2:
				tm = clock.Always
			default:
				tm = clock.Never - clock.Time(rng.Intn(4))
			}
			h := w.Insert(tm)
			res[h] = tm
			handles = append(handles, h)
		case r < 8:
			i := rng.Intn(len(handles))
			h := handles[i]
			w.Remove(h)
			delete(res, h)
			handles[i] = handles[len(handles)-1]
			handles = handles[:len(handles)-1]
		default:
			i := rng.Intn(len(handles))
			h := handles[i]
			nt := clock.Time(rng.Int63n(1 << 14))
			w.Update(h, nt)
			res[h] = nt
		}
		if op%50 == 0 {
			verify(t, w, res, []clock.Time{0, 7, 8, 100, 1 << 12, 1 << 40, clock.Never - 2, clock.Never})
		}
	}
}

func TestWheelAllocFree(t *testing.T) {
	// Steady-state insert/remove must recycle arena nodes, not grow.
	w := New(Config{Hint: 4})
	h := w.Insert(1)
	for i := 0; i < 1000; i++ {
		w.Remove(h)
		h = w.Insert(clock.Time(i))
	}
	if got := len(w.nodes); got > 4 {
		t.Fatalf("arena grew to %d nodes under steady state", got)
	}
}
