package wire

import (
	"fmt"

	"pieo/internal/flowq"
)

// Classifier assigns stable FlowIDs to 5-tuples — the step between the
// wire and the per-flow queues in Fig 1. IDs are dense and allocated in
// first-seen order so they can index the scheduler's flow table and the
// hierarchy's contiguous child ranges directly.
type Classifier struct {
	// Symmetric, when true, maps both directions of a connection to the
	// same flow (classification by FastHash-style canonical tuple).
	Symmetric bool

	byTuple map[FiveTuple]flowq.FlowID
	next    flowq.FlowID
	max     int
}

// NewClassifier creates a classifier admitting at most maxFlows flows.
func NewClassifier(maxFlows int) *Classifier {
	if maxFlows <= 0 {
		panic(fmt.Sprintf("wire: maxFlows must be positive, got %d", maxFlows))
	}
	return &Classifier{byTuple: make(map[FiveTuple]flowq.FlowID, maxFlows), max: maxFlows}
}

// canonical folds the two directions onto one tuple when Symmetric.
func (c *Classifier) canonical(t FiveTuple) FiveTuple {
	if !c.Symmetric {
		return t
	}
	r := t.Reverse()
	// Lexicographic pick of the smaller direction.
	if less(r, t) {
		return r
	}
	return t
}

func less(a, b FiveTuple) bool {
	for i := 0; i < 4; i++ {
		if a.SrcIP[i] != b.SrcIP[i] {
			return a.SrcIP[i] < b.SrcIP[i]
		}
	}
	for i := 0; i < 4; i++ {
		if a.DstIP[i] != b.DstIP[i] {
			return a.DstIP[i] < b.DstIP[i]
		}
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	return a.DstPort < b.DstPort
}

// Classify returns the FlowID for the tuple, allocating one on first
// sight. ok is false when the flow table is full and the tuple is new.
func (c *Classifier) Classify(t FiveTuple) (flowq.FlowID, bool) {
	key := c.canonical(t)
	if id, seen := c.byTuple[key]; seen {
		return id, true
	}
	if len(c.byTuple) >= c.max {
		return 0, false
	}
	id := c.next
	c.next++
	c.byTuple[key] = id
	return id, true
}

// Flows returns the number of allocated flows.
func (c *Classifier) Flows() int { return len(c.byTuple) }

// Lookup returns the FlowID without allocating.
func (c *Classifier) Lookup(t FiveTuple) (flowq.FlowID, bool) {
	id, ok := c.byTuple[c.canonical(t)]
	return id, ok
}
