// Package wire implements the packet-facing edge of the scheduling model
// (Fig 1): decoding Ethernet/IPv4/TCP/UDP headers into preallocated
// structs (the zero-allocation DecodingLayerParser style), extracting the
// 5-tuple flow key, and classifying packets into the per-flow queues the
// scheduler serves. It lets the examples and tests drive the scheduler
// with real frames instead of synthetic (flow, size) pairs.
//
// Decoding is deliberately minimal: exactly the fields the scheduler's
// flow classification needs, with strict length validation and no
// options/extension parsing beyond skipping IPv4 IHL correctly.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol numbers and EtherTypes used by the classifier.
const (
	EtherTypeIPv4 = 0x0800

	ProtoTCP = 6
	ProtoUDP = 17

	ethHeaderLen  = 14
	ipv4MinHeader = 20
	udpHeaderLen  = 8
	tcpMinHeader  = 20
)

// Decode errors.
var (
	ErrTruncated   = errors.New("wire: truncated packet")
	ErrNotIPv4     = errors.New("wire: not an IPv4 packet")
	ErrBadIHL      = errors.New("wire: bad IPv4 header length")
	ErrUnsupported = errors.New("wire: unsupported transport protocol")
)

// Ethernet is a decoded Ethernet II header.
type Ethernet struct {
	Dst       [6]byte
	Src       [6]byte
	EtherType uint16
}

// IPv4 is a decoded IPv4 header (no options retained).
type IPv4 struct {
	Src, Dst    [4]byte
	Protocol    uint8
	TotalLength uint16
	HeaderLen   int
}

// Transport is a decoded TCP/UDP port pair.
type Transport struct {
	SrcPort, DstPort uint16
}

// FiveTuple identifies a flow: addresses, ports, protocol.
type FiveTuple struct {
	SrcIP, DstIP     [4]byte
	SrcPort, DstPort uint16
	Protocol         uint8
}

// String renders the tuple like "10.0.0.1:80->10.0.0.2:12345/tcp".
func (t FiveTuple) String() string {
	proto := fmt.Sprintf("%d", t.Protocol)
	switch t.Protocol {
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%d.%d.%d.%d:%d->%d.%d.%d.%d:%d/%s",
		t.SrcIP[0], t.SrcIP[1], t.SrcIP[2], t.SrcIP[3], t.SrcPort,
		t.DstIP[0], t.DstIP[1], t.DstIP[2], t.DstIP[3], t.DstPort, proto)
}

// Reverse returns the tuple of the opposite direction.
func (t FiveTuple) Reverse() FiveTuple {
	return FiveTuple{
		SrcIP: t.DstIP, DstIP: t.SrcIP,
		SrcPort: t.DstPort, DstPort: t.SrcPort,
		Protocol: t.Protocol,
	}
}

// FastHash returns a direction-symmetric hash (A->B == B->A), so both
// directions of a connection classify to the same bucket when desired —
// the same property gopacket's Flow.FastHash provides for load
// balancing.
func (t FiveTuple) FastHash() uint64 {
	fwd := t.dirHash(t.SrcIP, t.DstIP, t.SrcPort, t.DstPort)
	rev := t.dirHash(t.DstIP, t.SrcIP, t.DstPort, t.SrcPort)
	return fwd ^ rev
}

func (t FiveTuple) dirHash(a, b [4]byte, pa, pb uint16) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, x := range []uint64{
		uint64(binary.BigEndian.Uint32(a[:])),
		uint64(binary.BigEndian.Uint32(b[:])),
		uint64(pa)<<16 | uint64(pb),
		uint64(t.Protocol),
	} {
		h ^= x
		h *= prime
	}
	return h
}

// Decoder decodes frames into preallocated layer structs, avoiding
// per-packet allocation (the DecodingLayerParser pattern). The zero
// value is ready to use; it is not safe for concurrent use.
type Decoder struct {
	Eth   Ethernet
	IP    IPv4
	Trans Transport
}

// Decode parses an Ethernet/IPv4/{TCP,UDP} frame and returns its flow
// tuple and the frame length to schedule. The input slice is not
// retained.
func (d *Decoder) Decode(frame []byte) (FiveTuple, error) {
	if len(frame) < ethHeaderLen {
		return FiveTuple{}, fmt.Errorf("%w: %d bytes for Ethernet", ErrTruncated, len(frame))
	}
	copy(d.Eth.Dst[:], frame[0:6])
	copy(d.Eth.Src[:], frame[6:12])
	d.Eth.EtherType = binary.BigEndian.Uint16(frame[12:14])
	if d.Eth.EtherType != EtherTypeIPv4 {
		return FiveTuple{}, fmt.Errorf("%w: ethertype 0x%04x", ErrNotIPv4, d.Eth.EtherType)
	}

	ip := frame[ethHeaderLen:]
	if len(ip) < ipv4MinHeader {
		return FiveTuple{}, fmt.Errorf("%w: %d bytes for IPv4", ErrTruncated, len(ip))
	}
	if version := ip[0] >> 4; version != 4 {
		return FiveTuple{}, fmt.Errorf("%w: version %d", ErrNotIPv4, version)
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipv4MinHeader || len(ip) < ihl {
		return FiveTuple{}, fmt.Errorf("%w: IHL %d", ErrBadIHL, ihl)
	}
	d.IP.HeaderLen = ihl
	d.IP.TotalLength = binary.BigEndian.Uint16(ip[2:4])
	d.IP.Protocol = ip[9]
	copy(d.IP.Src[:], ip[12:16])
	copy(d.IP.Dst[:], ip[16:20])

	trans := ip[ihl:]
	switch d.IP.Protocol {
	case ProtoTCP:
		if len(trans) < tcpMinHeader {
			return FiveTuple{}, fmt.Errorf("%w: %d bytes for TCP", ErrTruncated, len(trans))
		}
	case ProtoUDP:
		if len(trans) < udpHeaderLen {
			return FiveTuple{}, fmt.Errorf("%w: %d bytes for UDP", ErrTruncated, len(trans))
		}
	default:
		return FiveTuple{}, fmt.Errorf("%w: protocol %d", ErrUnsupported, d.IP.Protocol)
	}
	d.Trans.SrcPort = binary.BigEndian.Uint16(trans[0:2])
	d.Trans.DstPort = binary.BigEndian.Uint16(trans[2:4])

	return FiveTuple{
		SrcIP: d.IP.Src, DstIP: d.IP.Dst,
		SrcPort: d.Trans.SrcPort, DstPort: d.Trans.DstPort,
		Protocol: d.IP.Protocol,
	}, nil
}

// BuildFrame serializes a minimal Ethernet/IPv4/{TCP,UDP} frame with the
// given tuple and payload length — the test-vector generator for the
// decoder and the examples' traffic source. The payload bytes are zero.
func BuildFrame(t FiveTuple, payloadLen int) []byte {
	transLen := udpHeaderLen
	if t.Protocol == ProtoTCP {
		transLen = tcpMinHeader
	}
	ipTotal := ipv4MinHeader + transLen + payloadLen
	frame := make([]byte, ethHeaderLen+ipTotal)

	// Ethernet: synthetic MACs derived from the IPs.
	copy(frame[0:6], []byte{2, 0, t.DstIP[0], t.DstIP[1], t.DstIP[2], t.DstIP[3]})
	copy(frame[6:12], []byte{2, 0, t.SrcIP[0], t.SrcIP[1], t.SrcIP[2], t.SrcIP[3]})
	binary.BigEndian.PutUint16(frame[12:14], EtherTypeIPv4)

	ip := frame[ethHeaderLen:]
	ip[0] = 0x45 // v4, IHL 5
	binary.BigEndian.PutUint16(ip[2:4], uint16(ipTotal))
	ip[8] = 64 // TTL
	ip[9] = t.Protocol
	copy(ip[12:16], t.SrcIP[:])
	copy(ip[16:20], t.DstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], ipv4Checksum(ip[:ipv4MinHeader]))

	trans := ip[ipv4MinHeader:]
	binary.BigEndian.PutUint16(trans[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(trans[2:4], t.DstPort)
	if t.Protocol == ProtoUDP {
		binary.BigEndian.PutUint16(trans[4:6], uint16(transLen+payloadLen))
	} else {
		trans[12] = byte(tcpMinHeader/4) << 4 // data offset
	}
	return frame
}

// ipv4Checksum computes the standard IPv4 header checksum over a header
// whose checksum field is zero.
func ipv4Checksum(header []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(header); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(header[i : i+2]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// ValidateIPv4Checksum reports whether the header checksum of a decoded
// frame is correct.
func ValidateIPv4Checksum(frame []byte) bool {
	if len(frame) < ethHeaderLen+ipv4MinHeader {
		return false
	}
	ip := frame[ethHeaderLen:]
	ihl := int(ip[0]&0x0f) * 4
	if ihl < ipv4MinHeader || len(ip) < ihl {
		return false
	}
	var sum uint32
	for i := 0; i+1 < ihl; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i : i+2]))
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return uint16(sum) == 0xffff
}
