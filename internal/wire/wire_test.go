package wire

import (
	"errors"
	"testing"
	"testing/quick"
)

func tupleUDP() FiveTuple {
	return FiveTuple{
		SrcIP: [4]byte{10, 0, 0, 1}, DstIP: [4]byte{10, 0, 0, 2},
		SrcPort: 5000, DstPort: 53, Protocol: ProtoUDP,
	}
}

func tupleTCP() FiveTuple {
	return FiveTuple{
		SrcIP: [4]byte{192, 168, 1, 5}, DstIP: [4]byte{172, 16, 0, 9},
		SrcPort: 44321, DstPort: 443, Protocol: ProtoTCP,
	}
}

func TestRoundTripUDP(t *testing.T) {
	frame := BuildFrame(tupleUDP(), 100)
	var d Decoder
	got, err := d.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != tupleUDP() {
		t.Fatalf("tuple = %v, want %v", got, tupleUDP())
	}
	if d.IP.Protocol != ProtoUDP || d.Trans.DstPort != 53 {
		t.Fatalf("layers = %+v %+v", d.IP, d.Trans)
	}
}

func TestRoundTripTCP(t *testing.T) {
	frame := BuildFrame(tupleTCP(), 1000)
	var d Decoder
	got, err := d.Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != tupleTCP() {
		t.Fatalf("tuple = %v, want %v", got, tupleTCP())
	}
}

func TestChecksumValid(t *testing.T) {
	frame := BuildFrame(tupleUDP(), 64)
	if !ValidateIPv4Checksum(frame) {
		t.Fatal("generated frame has a bad IPv4 checksum")
	}
	frame[ethHeaderLen+8]++ // corrupt TTL
	if ValidateIPv4Checksum(frame) {
		t.Fatal("corrupted frame passed checksum")
	}
}

func TestDecodeErrors(t *testing.T) {
	var d Decoder
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrTruncated},
		{"short-eth", make([]byte, 10), ErrTruncated},
		{"not-ipv4", func() []byte {
			f := BuildFrame(tupleUDP(), 10)
			f[12], f[13] = 0x86, 0xdd // IPv6 ethertype
			return f
		}(), ErrNotIPv4},
		{"bad-version", func() []byte {
			f := BuildFrame(tupleUDP(), 10)
			f[ethHeaderLen] = 0x65
			return f
		}(), ErrNotIPv4},
		{"bad-ihl", func() []byte {
			f := BuildFrame(tupleUDP(), 10)
			f[ethHeaderLen] = 0x41 // IHL 4 -> 16 bytes < 20
			return f
		}(), ErrBadIHL},
		{"truncated-ip", append(BuildFrame(tupleUDP(), 10)[:ethHeaderLen], make([]byte, 8)...), ErrTruncated},
		{"unsupported-proto", func() []byte {
			f := BuildFrame(tupleUDP(), 10)
			f[ethHeaderLen+9] = 1 // ICMP
			return f
		}(), ErrUnsupported},
		{"truncated-udp", BuildFrame(tupleUDP(), 10)[:ethHeaderLen+ipv4MinHeader+4], ErrTruncated},
	}
	for _, c := range cases {
		_, err := d.Decode(c.frame)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestFiveTupleString(t *testing.T) {
	got := tupleUDP().String()
	want := "10.0.0.1:5000->10.0.0.2:53/udp"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestFastHashSymmetric(t *testing.T) {
	a := tupleTCP()
	if a.FastHash() != a.Reverse().FastHash() {
		t.Fatal("FastHash not direction-symmetric")
	}
	b := tupleUDP()
	if a.FastHash() == b.FastHash() {
		t.Fatal("distinct tuples hash equal (unlucky, change the hash)")
	}
}

func TestClassifierStableIDs(t *testing.T) {
	c := NewClassifier(8)
	id1, ok := c.Classify(tupleUDP())
	if !ok {
		t.Fatal("Classify failed")
	}
	id2, _ := c.Classify(tupleTCP())
	if id1 == id2 {
		t.Fatal("distinct tuples share an id")
	}
	again, _ := c.Classify(tupleUDP())
	if again != id1 {
		t.Fatalf("id changed: %d -> %d", id1, again)
	}
	if c.Flows() != 2 {
		t.Fatalf("Flows = %d", c.Flows())
	}
}

func TestClassifierCapacity(t *testing.T) {
	c := NewClassifier(1)
	if _, ok := c.Classify(tupleUDP()); !ok {
		t.Fatal("first flow rejected")
	}
	if _, ok := c.Classify(tupleTCP()); ok {
		t.Fatal("flow table overflow admitted")
	}
	// Existing flows still classify.
	if _, ok := c.Classify(tupleUDP()); !ok {
		t.Fatal("existing flow rejected at capacity")
	}
}

func TestClassifierSymmetric(t *testing.T) {
	c := NewClassifier(8)
	c.Symmetric = true
	fwd, _ := c.Classify(tupleTCP())
	rev, _ := c.Classify(tupleTCP().Reverse())
	if fwd != rev {
		t.Fatal("symmetric classifier split a connection")
	}
	if c.Flows() != 1 {
		t.Fatalf("Flows = %d, want 1", c.Flows())
	}
}

func TestClassifierLookupDoesNotAllocate(t *testing.T) {
	c := NewClassifier(8)
	if _, ok := c.Lookup(tupleUDP()); ok {
		t.Fatal("Lookup invented a flow")
	}
	if c.Flows() != 0 {
		t.Fatal("Lookup allocated")
	}
}

func TestNewClassifierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewClassifier(0) did not panic")
		}
	}()
	NewClassifier(0)
}

// Property: Decode(BuildFrame(t)) == t for arbitrary tuples, and the
// checksum always validates.
func TestRoundTripProperty(t *testing.T) {
	f := func(src, dst [4]byte, sp, dp uint16, tcp bool, payload uint8) bool {
		proto := uint8(ProtoUDP)
		if tcp {
			proto = ProtoTCP
		}
		in := FiveTuple{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Protocol: proto}
		frame := BuildFrame(in, int(payload))
		if !ValidateIPv4Checksum(frame) {
			return false
		}
		var d Decoder
		out, err := d.Decode(frame)
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never allocates per packet after warm-up.
func TestDecodeZeroAlloc(t *testing.T) {
	frame := BuildFrame(tupleTCP(), 512)
	var d Decoder
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := d.Decode(frame); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Decode allocates %v per packet, want 0", allocs)
	}
}
