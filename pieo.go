// Package pieo is a Go implementation of PIEO (Push-In-Extract-Out), the
// programmable packet scheduling primitive of "Fast, Scalable, and
// Programmable Packet Scheduler in Hardware" (Vishal Shrivastav, SIGCOMM
// 2019), together with the scheduler framework, algorithm catalogue,
// hierarchical composition, hardware cost model, and evaluation harness
// that reproduce the paper.
//
// A PIEO list keeps elements ordered by a programmable rank and attaches
// to each element an eligibility predicate encoded as a send time; a
// dequeue extracts the smallest-ranked element whose predicate holds
// ("schedule the smallest ranked eligible element"). Unlike a PIFO
// priority queue, which can only pop its head, PIEO can dequeue from
// arbitrary positions via the predicate filter — which is exactly what
// algorithms such as WF²Q+ and all non-work-conserving shapers need.
//
// The package re-exports the core types so applications depend only on
// the module root:
//
//	l := pieo.NewList(1024)
//	l.Enqueue(pieo.Entry{ID: 7, Rank: 42, SendTime: 1000})
//	e, ok := l.Dequeue(now) // smallest-ranked eligible element
//
// Higher layers:
//
//   - NewScheduler + a Program (DRR, WFQ, WF2Q, TokenBucket, …) runs the
//     §3.2 programming framework over per-flow FIFO queues.
//   - NewHierarchy composes per-node policies into the §4.3 multi-level
//     scheduler (e.g. per-VM rate limits with per-flow fair queueing).
//   - NewSim drives any scheduler on a simulated link at nanosecond
//     granularity.
//   - RunExperiment regenerates the paper's tables and figures.
package pieo

import (
	"fmt"

	"pieo/internal/algos"
	"pieo/internal/backend"
	"pieo/internal/clock"
	"pieo/internal/core"
	"pieo/internal/experiments"
	"pieo/internal/flowq"
	"pieo/internal/hier"
	"pieo/internal/hwmodel"
	"pieo/internal/netsim"
	"pieo/internal/sched"
	"pieo/internal/shard"
	"pieo/internal/supervise"
	"pieo/internal/wire"

	// Linked for its backend registration only: keeps the flat executable
	// spec selectable as "ref" wherever the facade's registry is used
	// (NewBackend, pieosim -backend), not just in the test binaries that
	// import it directly.
	_ "pieo/internal/refmodel"
)

// Core list types (§3.1, §5).
type (
	// Time is an opaque monotonic tick; algorithms choose the unit.
	Time = clock.Time
	// Entry is one element of a PIEO ordered list.
	Entry = core.Entry
	// List is the PIEO ordered list, implemented with the paper's
	// sublist architecture.
	List = core.List
	// ListStats counts hardware work (cycles, SRAM accesses) per list.
	ListStats = core.Stats
)

// Predicate sentinels (§5.2): Always encodes an eligibility predicate
// that is always true, Never one that is always false.
const (
	Always = clock.Always
	Never  = clock.Never
)

// Typed errors. Every backend and layer reports failure through these
// (DESIGN.md §8) instead of panicking; strict-mode scheduler layers
// re-panic on them for the historical contract.
var (
	ErrFull      = core.ErrFull
	ErrDuplicate = core.ErrDuplicate
	// ErrShardDown reports an operation the sharded engine refused
	// because every shard that could serve it is quarantined.
	ErrShardDown = core.ErrShardDown
	// ErrUnknownFlow reports an ordered-list extraction whose ID has no
	// registered flow state.
	ErrUnknownFlow = core.ErrUnknownFlow
	// ErrDeadline reports a blocking operation that exceeded its
	// configured time budget on the supervision clock (DESIGN.md §12).
	ErrDeadline = core.ErrDeadline
)

// NewList creates a PIEO ordered list with capacity n using the paper's
// √n sublist geometry.
func NewList(n int) *List { return core.New(n) }

// NewListWithSublistSize creates a PIEO list with an explicit sublist
// size (geometry ablations).
func NewListWithSublistSize(n, s int) *List { return core.NewWithSublistSize(n, s) }

// Pluggable ordered-list backends.
type (
	// Backend is the ordered-list contract every consumer (scheduler,
	// hierarchy, SyncList, tools) programs against; core.List, the PIFO
	// baseline, the multi-band approximation, and the sharded engine all
	// satisfy it.
	Backend = backend.Backend
	// BackendStats counts backend operations (enqueues, dequeues, …).
	BackendStats = backend.Stats
	// Optional backend capabilities, discovered by type assertion: a
	// backend implements what it honestly can, callers degrade
	// gracefully. Aliased here because internal/backend is unimportable
	// from outside the module.
	Peeker           = backend.Peeker
	RankUpdater      = backend.RankUpdater
	RankRanger       = backend.RankRanger
	InvariantChecker = backend.InvariantChecker
	HardwareModeled  = backend.HardwareModeled
	// EligIndexed is the timing-wheel eligibility-index capability: an
	// exact O(1) "when does the next ineligible element become eligible"
	// answer (internal/timewheel), with a switch to drop the index for
	// baseline measurements.
	EligIndexed = backend.EligIndexed
	// Batcher is the batch-operation capability: EnqueueBatch/DequeueUpTo
	// with exact sequential semantics but amortized per-op overhead.
	Batcher = backend.Batcher
	// Combining is the flat-combining ingress capability: contended
	// mutations publish into per-partition rings and the lock holder
	// executes them in one critical section. The sharded engine
	// implements it; SetCombining toggles the layer for comparisons.
	Combining = backend.Combining
	// CombiningStats snapshots a combining backend's ring activity
	// (ring publishes, operations executed by another thread's drain).
	CombiningStats = backend.CombiningStats
	// ShardedList is the concurrent PIEO engine: flows hash-partitioned
	// across independently-locked lists, dequeue as a tournament over
	// per-shard summaries.
	ShardedList = shard.Engine
	// AdmissionPolicy selects what a full list does with an arrival in
	// non-strict mode: reject, tail-drop, or rank-aware push-out
	// (DESIGN.md §8).
	AdmissionPolicy = backend.AdmissionPolicy
	// AdmitOutcome reports what an admission decision did with the
	// arrival (admitted, dropped, or admitted-by-eviction).
	AdmitOutcome = backend.AdmitOutcome
	// Evictor is the push-out capability: backends that can identify and
	// shed their largest-ranked resident element.
	Evictor = backend.Evictor
	// FaultStats counts the non-strict faults and admission decisions a
	// scheduler layer absorbed instead of panicking.
	FaultStats = backend.FaultStats
	// ShardFaultStats counts quarantine/rebuild/loss activity inside the
	// sharded engine.
	ShardFaultStats = shard.FaultStats
	// ShardFaultEvent is one entry of the sharded engine's fault log,
	// stamped with its supervision-clock instant; recovery events carry
	// the episode's downtime, so MTTR is computable from the log alone
	// (MTTRFromEvents).
	ShardFaultEvent = shard.FaultEvent
)

// Self-healing supervision surface (DESIGN.md §12).
type (
	// Health is the capability health-aware backends implement: a
	// point-in-time report of occupancy plus per-partition circuit-breaker
	// state. The sharded engine and SyncList both implement it.
	Health = backend.Health
	// HealthReport is the point-in-time backend health snapshot.
	HealthReport = backend.HealthReport
	// ShardHealth is one partition's health entry in a HealthReport.
	ShardHealth = backend.ShardHealth
	// BreakerPhase is a partition's circuit-breaker state
	// (closed / open / half-open).
	BreakerPhase = backend.BreakerPhase
	// BreakerConfig tunes the sharded engine's per-shard circuit breakers
	// (backoff schedule, probation budget, jitter); see
	// ShardedList.SetBreakerConfig.
	BreakerConfig = supervise.BreakerConfig
	// OverloadController steps admission through the graduated overload
	// ladder (admit-all → tail-drop → push-out → shed) on occupancy
	// watermarks with hysteresis; attach one to Scheduler.Overload.
	OverloadController = supervise.Controller
	// OverloadControllerStats is a controller counter snapshot
	// (level, evaluations, transitions, sheds).
	OverloadControllerStats = supervise.ControllerStats
	// OverloadLevel is one rung of the graduated overload ladder.
	OverloadLevel = supervise.Level
	// Watermarks are the enter/exit occupancy fractions of each overload
	// level; the enter/exit gap is the no-flapping hysteresis.
	Watermarks = supervise.Watermarks
)

// Circuit-breaker phases (DESIGN.md §12).
const (
	BreakerClosed   = backend.BreakerClosed
	BreakerOpen     = backend.BreakerOpen
	BreakerHalfOpen = backend.BreakerHalfOpen
)

// Graduated overload levels (DESIGN.md §12).
const (
	LevelAdmitAll = supervise.LevelAdmitAll
	LevelTailDrop = supervise.LevelTailDrop
	LevelPushOut  = supervise.LevelPushOut
	LevelShed     = supervise.LevelShed
)

// HealthOf returns b's health report when the backend implements the
// Health capability.
func HealthOf(b Backend) (HealthReport, bool) { return backend.HealthOf(b) }

// NewOverloadController builds a graduated overload controller for a
// backend of the given capacity; a zero Watermarks selects the default
// ladder (tail-drop 70/60, push-out 85/75, shed 97/90).
func NewOverloadController(capacity int, wm Watermarks) *OverloadController {
	return supervise.NewController(capacity, wm)
}

// MTTRFromEvents computes recovery statistics from a sharded engine's
// fault log alone: the number of completed outage episodes and their
// total and maximum downtime on the supervision clock.
func MTTRFromEvents(events []ShardFaultEvent) (recoveries int, total, max Time) {
	return shard.MTTR(events)
}

// Admission policies for full lists (DESIGN.md §8).
const (
	AdmitReject   = backend.AdmitReject
	AdmitTailDrop = backend.AdmitTailDrop
	AdmitPushOut  = backend.AdmitPushOut
)

// Admit inserts e into b under the given admission policy: a full list
// is resolved by the policy (reject / drop arrival / evict the
// largest-ranked resident), every other error passes through unchanged.
func Admit(b Backend, pol AdmissionPolicy, e Entry) (AdmitOutcome, error) {
	return backend.Admit(b, pol, e)
}

// WrapList adapts a core List to the Backend interface.
func WrapList(l *List) Backend { return backend.WrapCore(l) }

// NewShardedList creates a sharded concurrent PIEO engine with capacity
// n split across k independently-locked shards (k <= 0 selects the
// default shard count) over the paper-exact core list in each shard.
func NewShardedList(n, k int) *ShardedList { return shard.New(n, k) }

// NewShardedListOn creates a sharded engine whose shards run the named
// registered shard backend ("core", "cffs", ...) — the engine's
// tournament, combining rings, and quarantine machinery are
// backend-generic, so any shard backend inherits them unchanged.
func NewShardedListOn(n, k int, backendName string) (*ShardedList, error) {
	return shard.NewNamed(n, k, backendName)
}

// ShardBackendNames lists the registered per-shard backend names
// accepted by NewShardedListOn.
func ShardBackendNames() []string { return backend.ShardNames() }

// NewBackend constructs a registered backend by name ("core", "pifo",
// "approx", "sharded", "cffs", "sharded+cffs", "ref") with the given
// capacity.
func NewBackend(name string, capacity int) (Backend, error) {
	return backend.New(name, capacity)
}

// BackendNames lists the registered backend names.
func BackendNames() []string { return backend.Names() }

// EnqueueBatch inserts es in order through b's native batch path when it
// has one (SyncList under one lock hold, the sharded engine as a
// per-shard fan-out), else through sequential Enqueue calls. It returns
// the number accepted and the first error encountered.
func EnqueueBatch(b Backend, es []Entry) (int, error) { return backend.EnqueueBatch(b, es) }

// DequeueUpTo extracts up to k eligible elements at now, appending them
// to out (which may be nil) and returning the extended slice.
func DequeueUpTo(b Backend, now Time, k int, out []Entry) []Entry {
	return backend.DequeueUpTo(b, now, k, out)
}

// SetCombining toggles the flat-combining ingress layer on backends that
// have one (the sharded engine), reporting whether b supports the knob.
func SetCombining(b Backend, on bool) bool { return backend.SetCombining(b, on) }

// Scheduler framework types (§3.2).
type (
	// FlowID identifies a flow (traffic class).
	FlowID = flowq.FlowID
	// Packet is a packet in a per-flow FIFO queue.
	Packet = flowq.Packet
	// Flow is per-flow scheduling and control-plane state.
	Flow = sched.Flow
	// Program is a scheduling algorithm expressed as programming
	// functions over the framework.
	Program = sched.Program
	// Scheduler is a flat single-level PIEO scheduler.
	Scheduler = sched.Scheduler
	// TriggerModel selects input- vs output-triggered enqueue.
	TriggerModel = sched.TriggerModel
)

// Trigger models (§3.2.1).
const (
	OutputTriggered = sched.OutputTriggered
	InputTriggered  = sched.InputTriggered
)

// NewScheduler creates a flat scheduler running prog for up to capacity
// flows on a link of the given rate.
func NewScheduler(prog *Program, capacity int, linkRateGbps float64) *Scheduler {
	return sched.New(prog, capacity, linkRateGbps)
}

// NewSchedulerOn creates a flat scheduler running prog over an explicit
// ordered-list backend.
func NewSchedulerOn(prog *Program, b Backend, linkRateGbps float64) *Scheduler {
	return sched.NewOn(prog, b, linkRateGbps)
}

// Algorithm catalogue (§4). Each constructor returns a Program for
// NewScheduler.
var (
	// FIFO schedules flows in arrival order (§2.3).
	FIFO = algos.FIFO
	// DRR is Deficit Round Robin (§4.1).
	DRR = algos.DRR
	// WFQ is Weighted Fair Queuing (§4.1).
	WFQ = algos.WFQ
	// WF2Q is Worst-case Fair Weighted Fair Queuing, WF²Q+ (§4.1) — the
	// algorithm PIFO cannot express.
	WF2Q = algos.WF2Q
	// TokenBucket is the classic non-work-conserving rate limiter (§4.2).
	TokenBucket = algos.TokenBucket
	// RCSP is Rate-Controlled Static-Priority queuing (§4.2).
	RCSP = algos.RCSP
	// StrictPriority schedules by static priority (§4.4, §4.5).
	StrictPriority = algos.StrictPriority
	// SJF is Shortest Job First (§4.5).
	SJF = algos.SJF
	// SRTF is Shortest Remaining Time First (§4.5).
	SRTF = algos.SRTF
	// EDF is Earliest Deadline First (§4.5).
	EDF = algos.EDF
	// LSTF is Least Slack Time First (§4.5).
	LSTF = algos.LSTF
	// Pacer releases each packet at its precomputed time (§1).
	Pacer = algos.Pacer

	// AgeStarvedFlows is the §4.4 starvation-avoidance alarm.
	AgeStarvedFlows = algos.AgeStarvedFlows
	// PauseFlow blocks a flow on asynchronous network feedback (§4.4).
	PauseFlow = algos.Pause
	// ResumeFlow unblocks a paused flow.
	ResumeFlow = algos.Resume
)

// Hierarchical scheduling (§4.3).
type (
	// Hierarchy is an n-level tree of PIEO schedulers.
	Hierarchy = hier.Hierarchy
	// Node is a non-leaf vertex whose Policy schedules its children.
	Node = hier.Node
	// ChildState is the per-child control-plane and scheduling state.
	ChildState = hier.Child
	// Policy is a per-node scheduling algorithm.
	Policy = hier.Policy
)

// NewHierarchy creates a hierarchy whose root schedules its children
// with rootPolicy. Add nodes/flows, then call Build before traffic.
func NewHierarchy(linkRateGbps float64, rootPolicy *Policy) *Hierarchy {
	return hier.New(linkRateGbps, rootPolicy)
}

// NewHierarchyOn creates a hierarchy whose per-level physical PIEOs are
// built by factory (one call per level, sized to that level's child
// count).
func NewHierarchyOn(linkRateGbps float64, rootPolicy *Policy, factory func(capacity int) Backend) *Hierarchy {
	return hier.NewOn(linkRateGbps, rootPolicy, factory)
}

// NewHierOn creates a hierarchy in logical-partitioned mode (§4.2): ALL
// tree nodes multiplex onto ONE shared physical PIEO of the named
// registered backend ("core", "cffs", "sharded", "sharded+cffs", ...),
// each node owning a contiguous ID band extracted with ranged dequeues.
// This is the mode that scales to tens of thousands of logical
// schedulers; the per-level constructors above keep the paper's original
// one-list-per-level layout.
func NewHierOn(linkRateGbps float64, rootPolicy *Policy, backendName string) (*Hierarchy, error) {
	// Resolve the name up front so a typo fails at construction, not at
	// Build (the factory itself cannot return an error).
	if _, err := backend.New(backendName, 1); err != nil {
		return nil, err
	}
	return hier.NewPartitionedOn(linkRateGbps, rootPolicy, func(n int) Backend {
		b, err := backend.New(backendName, n)
		if err != nil {
			panic(fmt.Sprintf("pieo: backend %q: %v", backendName, err))
		}
		return b
	}), nil
}

// Per-node policies for hierarchies.
var (
	// RoundRobinPolicy rotates through children.
	RoundRobinPolicy = hier.RoundRobin
	// StrictPriorityPolicy schedules children by static priority.
	StrictPriorityPolicy = hier.StrictPriority
	// WFQPolicy is per-node Weighted Fair Queuing.
	WFQPolicy = hier.WFQ
	// WF2QPolicy is per-node WF²Q+.
	WF2QPolicy = hier.WF2Q
	// TokenBucketPolicy rate-limits each child independently.
	TokenBucketPolicy = hier.TokenBucket
)

// Simulation substrate.
type (
	// Link models a fixed-rate transmit link.
	Link = netsim.Link
	// Sim is the discrete-event simulation loop.
	Sim = netsim.Sim
	// SimScheduler is the contract schedulers offer the simulator.
	SimScheduler = netsim.Scheduler
)

// NewSim creates a simulation over the given link and scheduler.
func NewSim(link Link, s SimScheduler) *Sim { return netsim.New(link, s) }

// Hardware cost model (§5, §6.1-6.2).
type (
	// Device is a hardware resource budget (e.g. StratixV).
	Device = hwmodel.Device
	// Geometry is a PIEO sublist shape.
	Geometry = hwmodel.Geometry
	// Resources is an estimated hardware footprint.
	Resources = hwmodel.Resources
)

// StratixV is the paper's prototype FPGA.
var StratixV = hwmodel.StratixV

// Hardware model entry points.
var (
	// PIEOGeometry returns the √n geometry for capacity n.
	PIEOGeometry = hwmodel.PIEOGeometry
	// PIEOResources estimates a PIEO instance's hardware footprint.
	PIEOResources = hwmodel.PIEOResources
	// PIFOResources estimates the PIFO baseline's footprint.
	PIFOResources = hwmodel.PIFOResources
	// PIEOClockMHz estimates the synthesized clock rate.
	PIEOClockMHz = hwmodel.PIEOClockMHz
)

// Wire-facing edge (Fig 1's ingress): frame decoding and flow
// classification.
type (
	// FiveTuple identifies a flow on the wire.
	FiveTuple = wire.FiveTuple
	// FrameDecoder decodes Ethernet/IPv4/{TCP,UDP} frames without
	// per-packet allocation.
	FrameDecoder = wire.Decoder
	// Classifier assigns stable FlowIDs to 5-tuples.
	Classifier = wire.Classifier
)

// NewClassifier creates a flow classifier admitting up to maxFlows flows.
func NewClassifier(maxFlows int) *Classifier { return wire.NewClassifier(maxFlows) }

// BuildFrame serializes a minimal Ethernet/IPv4/{TCP,UDP} frame, for
// tests and traffic generators.
var BuildFrame = wire.BuildFrame

// ExperimentTable is one reproduced figure or table.
type ExperimentTable = experiments.Table

// RunExperiment regenerates a paper table/figure by id (fig2, fig8,
// fig9, fig10, fig11, fig12, rate, scale, deviation, ablation).
func RunExperiment(id string) (*ExperimentTable, error) { return experiments.Run(id) }

// ExperimentIDs lists the available experiment ids.
func ExperimentIDs() []string { return experiments.IDs() }
