package pieo

import (
	"fmt"
	"testing"
)

func TestPublicListAPI(t *testing.T) {
	l := NewList(64)
	if err := l.Enqueue(Entry{ID: 1, Rank: 10, SendTime: 100}); err != nil {
		t.Fatal(err)
	}
	if err := l.Enqueue(Entry{ID: 2, Rank: 20, SendTime: Always}); err != nil {
		t.Fatal(err)
	}
	if err := l.Enqueue(Entry{ID: 1, Rank: 1}); err != ErrDuplicate {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	e, ok := l.Dequeue(50)
	if !ok || e.ID != 2 {
		t.Fatalf("Dequeue(50) = %v,%v, want flow 2", e, ok)
	}
	e, ok = l.Dequeue(100)
	if !ok || e.ID != 1 {
		t.Fatalf("Dequeue(100) = %v,%v, want flow 1", e, ok)
	}
}

func TestPublicSchedulerAPI(t *testing.T) {
	s := NewScheduler(WF2Q(), 8, 40)
	s.SetWeight(1, 3)
	s.SetWeight(2, 1)
	for i := 0; i < 4; i++ {
		s.OnArrival(0, Packet{Flow: 1, Size: 1500, Seq: uint64(i)})
		s.OnArrival(0, Packet{Flow: 2, Size: 1500, Seq: uint64(10 + i)})
	}
	counts := map[FlowID]int{}
	for i := 0; i < 8; i++ {
		p, ok := s.NextPacket(Time(i))
		if !ok {
			t.Fatalf("drained early at %d", i)
		}
		counts[p.Flow]++
	}
	if counts[1] != 4 || counts[2] != 4 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestPublicHierarchyAPI(t *testing.T) {
	h := NewHierarchy(40, TokenBucketPolicy())
	vm := h.Root().AddNode("vm0", WF2QPolicy())
	vm.AddFlow(1)
	vm.AddFlow(2)
	h.Build()
	vm.Self().RateGbps = 10
	vm.Self().Burst = 3000
	vm.Self().Tokens = 3000

	h.OnArrival(0, Packet{Flow: 1, Size: 1500})
	h.OnArrival(0, Packet{Flow: 2, Size: 1500})
	p, ok := h.NextPacket(0)
	if !ok {
		t.Fatal("NextPacket failed")
	}
	if p.Flow != 1 && p.Flow != 2 {
		t.Fatalf("unexpected flow %d", p.Flow)
	}
}

func TestPublicSimAPI(t *testing.T) {
	s := NewScheduler(FIFO(), 4, 100)
	sim := NewSim(Link{RateGbps: 100}, s)
	var sent int
	sim.OnTransmit = func(now Time, p Packet) { sent++ }
	sim.InjectOne(0, Packet{Flow: 1, Size: 1500})
	sim.Run(1_000_000)
	if sent != 1 {
		t.Fatalf("sent = %d, want 1", sent)
	}
}

func TestPublicHardwareModel(t *testing.T) {
	r := PIEOResources(PIEOGeometry(30000))
	if !r.FitsOn(StratixV) {
		t.Fatal("PIEO@30K does not fit the paper's device")
	}
	if PIFOResources(2048).FitsOn(StratixV) {
		t.Fatal("PIFO@2K fits; it must not")
	}
	if mhz := PIEOClockMHz(PIEOGeometry(30000)); mhz < 70 || mhz > 90 {
		t.Fatalf("clock = %v, want ~80", mhz)
	}
}

func TestPublicExperiments(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 10 {
		t.Fatalf("ExperimentIDs = %v", ids)
	}
	tab, err := RunExperiment("fig8")
	if err != nil || tab.ID != "fig8" {
		t.Fatalf("RunExperiment(fig8) = %v, %v", tab, err)
	}
	if _, err := RunExperiment("bogus"); err == nil {
		t.Fatal("RunExperiment(bogus) did not error")
	}
}

// TestPublicHealthAPI pins the self-healing supervision surface on the
// facade: HealthOf on the sharded engine and SyncList, the overload
// controller ladder, and MTTR from the fault log.
func TestPublicHealthAPI(t *testing.T) {
	sl := NewShardedList(1024, 4)
	if err := sl.Enqueue(Entry{ID: 1, Rank: 10, SendTime: Always}); err != nil {
		t.Fatal(err)
	}
	hr, ok := HealthOf(sl)
	if !ok {
		t.Fatal("sharded engine does not report health")
	}
	if hr.Occupancy != 1 || hr.Capacity != 1024 || hr.DownShards != 0 || len(hr.Shards) != 4 {
		t.Fatalf("sharded health = %+v", hr)
	}
	for _, sh := range hr.Shards {
		if !sh.Up || sh.Phase != BreakerClosed {
			t.Fatalf("healthy shard reports %+v", sh)
		}
	}

	sync := NewSyncList(64)
	if err := sync.Enqueue(Entry{ID: 9, Rank: 1, SendTime: Always}); err != nil {
		t.Fatal(err)
	}
	hr, ok = HealthOf(sync)
	if !ok {
		t.Fatal("SyncList does not report health")
	}
	if hr.Occupancy != 1 || hr.Capacity != 64 || len(hr.Shards) != 1 || hr.Shards[0].Phase != BreakerClosed {
		t.Fatalf("synclist health = %+v", hr)
	}
	if f := hr.OccupancyFraction(); f <= 0 || f > 1 {
		t.Fatalf("occupancy fraction = %v", f)
	}

	ctl := NewOverloadController(100, Watermarks{})
	if lvl := ctl.Evaluate(10); lvl != LevelAdmitAll {
		t.Fatalf("level at 10%% = %v", lvl)
	}
	if lvl := ctl.Evaluate(99); lvl != LevelShed {
		t.Fatalf("level at 99%% = %v", lvl)
	}
	if ctl.Stats().Transitions == 0 {
		t.Fatal("ladder climb recorded no transitions")
	}

	if rec, total, max := MTTRFromEvents(nil); rec != 0 || total != 0 || max != 0 {
		t.Fatalf("MTTR of empty log = %d/%v/%v", rec, total, max)
	}
}

// ExampleNewList demonstrates the quickstart: eligibility-filtered
// dequeue from an ordered list.
func ExampleNewList() {
	l := NewList(16)
	l.Enqueue(Entry{ID: 1, Rank: 10, SendTime: 100}) // eligible at t=100
	l.Enqueue(Entry{ID: 2, Rank: 20, SendTime: Always})

	e, _ := l.Dequeue(50)
	fmt.Println("at t=50: ", e)
	e, _ = l.Dequeue(100)
	fmt.Println("at t=100:", e)
	// Output:
	// at t=50:  [2, 20, 0]
	// at t=100: [1, 10, 100]
}
