// Command benchdiff compares two BENCH_*.json artifacts (written by
// `pieobench -json`) benchstat-style: rows are matched on their
// identity columns (experiment, backend, K, procs, n, ... — everything
// that names a configuration rather than measures it), and each metric
// column present on both sides is reported as old → new with a signed
// delta. Intended use is the CI bench-smoke job and local before/after
// checks:
//
//	go run ./scripts/benchdiff old/BENCH_scaling.json BENCH_scaling.json
//	go run ./scripts/benchdiff -max-regress 5 old.json new.json  # exit 1 if ns/op worsens > 5%
//
// Wall-clock experiment tables are single measurements (best-of-N), not
// benchstat sample sets — deltas inside scheduler noise (a few percent)
// are not significant, which is why -max-regress gates only on a
// generous explicit threshold instead of defaulting to any-regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchFile mirrors cmd/pieobench's benchJSON schema (rows keyed by
// column name, so this tool survives column reordering).
type benchFile struct {
	Experiment string              `json:"experiment"`
	GitSHA     string              `json:"git_sha"`
	Columns    []string            `json:"columns"`
	Rows       []map[string]string `json:"rows"`
}

// metricCols are the measured columns a delta is computed for, in
// report order; lower-is-better except where marked.
var metricCols = []struct {
	name   string
	higher bool // higher is better (throughput)
}{
	{"ns/op", false},
	{"allocs/op", false},
	{"Mops/s", true},
}

func isMetric(c string) bool {
	for _, m := range metricCols {
		if m.name == c {
			return true
		}
	}
	// Derived/diagnostic columns that measure rather than identify a row
	// but aren't diffed: counter totals, precomputed ratios, and the
	// workload-size knobs ("ops"/"n"), which CI runs reduce via env vars
	// — keying on them would make every cross-run comparison match
	// nothing. Rows are identified by (experiment, backend, K, procs).
	switch c {
	case "ring ops", "combined ops", "combined share", "vs synclist", "gomaxprocs", "ops", "n":
		return true
	}
	return false
}

func load(path string) (*benchFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &f, nil
}

// rowKey builds the identity key: every non-metric column value, in the
// file's column order, plus the experiment id (sweep files carry it
// per-row; single-experiment files don't, so fall back to the header).
func rowKey(f *benchFile, row map[string]string) string {
	parts := []string{}
	if exp, ok := row["experiment"]; ok {
		parts = append(parts, exp)
	} else {
		parts = append(parts, f.Experiment)
	}
	for _, c := range f.Columns {
		if c == "experiment" || isMetric(c) {
			continue
		}
		if v, ok := row[c]; ok {
			parts = append(parts, c+"="+v)
		}
	}
	return strings.Join(parts, " ")
}

func main() {
	maxRegress := flag.Float64("max-regress", 0, "exit 1 if any matched row's ns/op worsens by more than this percentage (0 disables the gate)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-max-regress pct] old.json new.json")
		os.Exit(2)
	}
	oldF, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newF, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	oldRows := map[string]map[string]string{}
	for _, r := range oldF.Rows {
		oldRows[rowKey(oldF, r)] = r
	}
	newRows := map[string]map[string]string{}
	var order []string
	for _, r := range newF.Rows {
		k := rowKey(newF, r)
		newRows[k] = r
		order = append(order, k)
	}

	fmt.Printf("benchdiff: %s (%s) -> %s (%s)\n\n", flag.Arg(0), oldF.GitSHA, flag.Arg(1), newF.GitSHA)
	worst := 0.0
	matched := 0
	for _, k := range order {
		nr := newRows[k]
		or, ok := oldRows[k]
		if !ok {
			fmt.Printf("%-70s  (new row, no baseline)\n", k)
			continue
		}
		matched++
		var cells []string
		for _, m := range metricCols {
			ov, ook := parseNum(or[m.name])
			nv, nok := parseNum(nr[m.name])
			if !ook || !nok {
				continue
			}
			delta := 0.0
			if ov != 0 {
				delta = 100 * (nv - ov) / ov
			}
			cells = append(cells, fmt.Sprintf("%s %.1f -> %.1f (%+.1f%%)", m.name, ov, nv, delta))
			if m.name == "ns/op" && delta > worst {
				worst = delta
			}
		}
		fmt.Printf("%-70s  %s\n", k, strings.Join(cells, "  "))
	}
	var gone []string
	for k := range oldRows {
		if _, ok := newRows[k]; !ok {
			gone = append(gone, k)
		}
	}
	sort.Strings(gone)
	for _, k := range gone {
		fmt.Printf("%-70s  (baseline row missing from new file)\n", k)
	}
	fmt.Printf("\n%d rows matched; worst ns/op regression %+.1f%%\n", matched, worst)
	if *maxRegress > 0 && worst > *maxRegress {
		fmt.Fprintf(os.Stderr, "benchdiff: ns/op regression %.1f%% exceeds -max-regress %.1f%%\n", worst, *maxRegress)
		os.Exit(1)
	}
}

// parseNum reads the leading float of a cell ("529.4", "1.07x", "64%").
func parseNum(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	end := 0
	for end < len(s) && (s[end] == '.' || s[end] == '-' || s[end] == '+' || (s[end] >= '0' && s[end] <= '9')) {
		end++
	}
	if end == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	return v, err == nil
}
