#!/usr/bin/env sh
# coverage_floor.sh <coverprofile> <file-pattern> <floor-pct>
#
# Computes the statement-weighted coverage percentage over every file in
# the Go cover profile whose path matches <file-pattern> (a grep -E
# regex), and fails if it is below <floor-pct>. Used by CI to hold the
# hier partition layer (the §4.2 logical-partitioning code) above its
# coverage floor.
set -eu

profile=${1:?usage: coverage_floor.sh <coverprofile> <file-pattern> <floor-pct>}
pattern=${2:?missing file pattern}
floor=${3:?missing floor percentage}

[ -r "$profile" ] || { echo "coverage_floor: cannot read $profile" >&2; exit 2; }

# Profile lines are "file.go:line.col,line.col numstmts hitcount".
# Weight each block by its statement count; a block is covered when its
# hit count is non-zero.
tail -n +2 "$profile" | grep -E "$pattern" | awk -v floor="$floor" -v pat="$pattern" '
	{
		stmts += $2
		if ($3 > 0) covered += $2
	}
	END {
		if (stmts == 0) {
			printf "coverage_floor: no profile blocks match %s\n", pat
			exit 2
		}
		pct = 100 * covered / stmts
		printf "coverage_floor: %s -> %.1f%% of %d statements (floor %s%%)\n", pat, pct, stmts, floor
		if (pct < floor) {
			printf "coverage_floor: FAIL: %.1f%% < %s%%\n", pct, floor
			exit 1
		}
	}'
