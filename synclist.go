package pieo

import (
	"sync"

	"pieo/internal/backend"
	"pieo/internal/clock"
)

// SyncList is a lock-guarded PIEO backend for callers that enqueue from
// multiple goroutines (e.g. per-connection producers feeding one
// transmit scheduler). The hardware design — and the single-threaded
// List — processes one operation per four cycles anyway, so a single
// lock mirrors the real serialization point rather than hiding it; when
// the lock itself becomes the bottleneck, switch to the sharded engine
// (NewShardedList), which partitions flows across independently-locked
// lists.
//
// Locking invariant: every mutating operation (Enqueue, Dequeue,
// DequeueFlow, DequeueRange, UpdateRank) takes the write lock; the
// read-only queries (Len, Contains, MinSendTime, Snapshot, Stats) take
// the read lock and may run concurrently with each other. This is sound
// only because the wrapped backend's query methods are side-effect free
// — core.List queries touch no counters and do no lazy restructuring.
// A backend whose reads mutate (e.g. one that rebalances on Snapshot)
// must not be wrapped here without auditing that property.
type SyncList struct {
	mu sync.RWMutex
	b  backend.Backend

	faults  uint64 // operations that failed with a non-contract error
	lastErr error  // most recent such error, for diagnosis
}

// NewSyncList creates a concurrency-safe PIEO list with capacity n over
// the paper-exact list backend.
func NewSyncList(n int) *SyncList {
	return NewSyncListOn(backend.NewCoreList(n))
}

// NewSyncListNamed creates a concurrency-safe PIEO list with capacity n
// over the named registered backend — the same registry NewBackend
// consults, so "cffs" selects the bucket-queue backend and "core" is
// identical to NewSyncList.
func NewSyncListNamed(name string, n int) (*SyncList, error) {
	b, err := backend.New(name, n)
	if err != nil {
		return nil, err
	}
	return NewSyncListOn(b), nil
}

// NewSyncListOn wraps any Backend in a single reader-writer lock.
func NewSyncListOn(b backend.Backend) *SyncList {
	return &SyncList{b: b}
}

// Enqueue inserts e at its rank position.
func (s *SyncList) Enqueue(e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Enqueue(e)
}

// Dequeue extracts the smallest-ranked eligible element at time now.
func (s *SyncList) Dequeue(now Time) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Dequeue(now)
}

// EnqueueBatch inserts es in order under ONE lock acquisition — the
// batch amortization this wrapper can offer — delegating to the wrapped
// backend's native batch path when it has one (backend.EnqueueBatch
// falls back to the per-op loop otherwise). Semantics match sequential
// Enqueue calls exactly: every entry is attempted, and the return is the
// accepted count plus the first error.
func (s *SyncList) EnqueueBatch(es []Entry) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return backend.EnqueueBatch(s.b, es)
}

// DequeueUpTo extracts up to k eligible elements at now under one lock
// acquisition, appending them to out (see backend.Batcher).
func (s *SyncList) DequeueUpTo(now Time, k int, out []Entry) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return backend.DequeueUpTo(s.b, now, k, out)
}

// DequeueFlow extracts a specific element by id.
func (s *SyncList) DequeueFlow(id uint32) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.DequeueFlow(id)
}

// DequeueRange extracts the smallest-ranked eligible element whose ID
// lies in [lo, hi].
func (s *SyncList) DequeueRange(now Time, lo, hi uint32) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.DequeueRange(now, lo, hi)
}

// Len returns the number of queued elements.
func (s *SyncList) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.b.Len()
}

// Contains reports whether id is currently queued.
func (s *SyncList) Contains(id uint32) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.b.Contains(id)
}

// MinSendTime returns the earliest eligibility time across the list.
func (s *SyncList) MinSendTime() (Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.b.MinSendTime()
}

// UpdateRank atomically re-ranks the element with the given id — the
// dequeue(f)+enqueue(f) pattern under one critical section, so
// concurrent readers never observe the element missing. A re-enqueue
// failure on the fallback path (possible only with an injected fault —
// the freed slot cannot be stolen under the lock) restores the element,
// reports false, and is retained for Faults/LastErr.
func (s *SyncList) UpdateRank(id uint32, rank uint64, sendTime clock.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok, err := backend.UpdateRank(s.b, id, rank, sendTime)
	if err != nil {
		s.faults++
		s.lastErr = err
	}
	return ok
}

// Faults returns how many operations failed with a non-contract error
// (injected faults, lost restores), and the most recent such error.
func (s *SyncList) Faults() (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.faults, s.lastErr
}

// NextWakeAfter implements backend.EligIndexed: delegated to the wrapped
// backend's index when it has one, answered exactly by a snapshot scan
// otherwise (the capability's contract is exactness, not speed).
func (s *SyncList) NextWakeAfter(now Time) Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ix, ok := s.b.(backend.EligIndexed); ok {
		return ix.NextWakeAfter(now)
	}
	best := clock.Never
	for _, ent := range s.b.Snapshot() {
		if ent.SendTime > now && ent.SendTime < best {
			best = ent.SendTime
		}
	}
	return best
}

// EligIndexActive implements backend.EligIndexed, reporting false when
// the wrapped backend carries no timing-wheel index.
func (s *SyncList) EligIndexActive() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ix, ok := s.b.(backend.EligIndexed); ok {
		return ix.EligIndexActive()
	}
	return false
}

// DisableEligIndex implements backend.EligIndexed; a no-op without an
// index underneath.
func (s *SyncList) DisableEligIndex() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ix, ok := s.b.(backend.EligIndexed); ok {
		ix.DisableEligIndex()
	}
}

// PeekMax implements backend.Evictor when the wrapped backend does,
// reporting ok=false otherwise so push-out degrades to tail-drop.
func (s *SyncList) PeekMax() (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ev, ok := s.b.(backend.Evictor); ok {
		return ev.PeekMax()
	}
	return Entry{}, false
}

// EvictMax implements backend.Evictor when the wrapped backend does.
func (s *SyncList) EvictMax() (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev, ok := s.b.(backend.Evictor); ok {
		return ev.EvictMax()
	}
	return Entry{}, false
}

// SetCombining implements backend.Combining when the wrapped backend
// does (the sharded engine under a SyncList used purely for its fault
// accounting); a no-op otherwise.
func (s *SyncList) SetCombining(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.b.(backend.Combining); ok {
		c.SetCombining(on)
	}
}

// CombiningEnabled implements backend.Combining, reporting false when
// the wrapped backend has no combining layer.
func (s *SyncList) CombiningEnabled() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if c, ok := s.b.(backend.Combining); ok {
		return c.CombiningEnabled()
	}
	return false
}

// CombiningStats implements backend.Combining (zero without a combining
// layer underneath).
func (s *SyncList) CombiningStats() backend.CombiningStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if c, ok := s.b.(backend.Combining); ok {
		return c.CombiningStats()
	}
	return backend.CombiningStats{}
}

// Health implements backend.Health: delegated to the wrapped backend's
// report when it has one (a sharded engine under the lock), synthesized
// as a single always-closed partition otherwise — a lock-guarded list
// has no quarantine machinery, so its health surface is occupancy plus
// the Faults counter.
func (s *SyncList) Health() backend.HealthReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if h, ok := s.b.(backend.Health); ok {
		return h.Health()
	}
	occ := s.b.Len()
	capacity := 0
	if c, ok := s.b.(interface{ Capacity() int }); ok {
		capacity = c.Capacity()
	}
	return backend.HealthReport{
		Occupancy: occ,
		Capacity:  capacity,
		Shards: []backend.ShardHealth{
			{Index: 0, Up: true, Phase: backend.BreakerClosed, Occupancy: occ},
		},
	}
}

// Snapshot returns the rank-ordered contents.
func (s *SyncList) Snapshot() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.b.Snapshot()
}

// Stats returns the wrapped backend's operation counters.
func (s *SyncList) Stats() backend.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.b.Stats()
}

// CheckInvariants validates the wrapped backend under the write lock.
func (s *SyncList) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return backend.CheckInvariants(s.b)
}

var (
	_ backend.Backend     = (*SyncList)(nil)
	_ backend.Batcher     = (*SyncList)(nil)
	_ backend.EligIndexed = (*SyncList)(nil)
	_ backend.Health      = (*SyncList)(nil)
)
