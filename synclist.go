package pieo

import (
	"sync"

	"pieo/internal/clock"
	"pieo/internal/core"
)

// SyncList is a mutex-guarded PIEO list for callers that enqueue from
// multiple goroutines (e.g. per-connection producers feeding one
// transmit scheduler). The hardware design — and the single-threaded
// List — processes one operation per four cycles anyway, so a single
// lock mirrors the real serialization point rather than hiding it;
// profile before assuming the lock is the bottleneck.
type SyncList struct {
	mu sync.Mutex
	l  *core.List
}

// NewSyncList creates a concurrency-safe PIEO list with capacity n.
func NewSyncList(n int) *SyncList {
	return &SyncList{l: core.New(n)}
}

// Enqueue inserts e at its rank position.
func (s *SyncList) Enqueue(e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.Enqueue(e)
}

// Dequeue extracts the smallest-ranked eligible element at time now.
func (s *SyncList) Dequeue(now Time) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.Dequeue(now)
}

// DequeueFlow extracts a specific element by id.
func (s *SyncList) DequeueFlow(id uint32) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.DequeueFlow(id)
}

// DequeueRange extracts the smallest-ranked eligible element whose ID
// lies in [lo, hi].
func (s *SyncList) DequeueRange(now Time, lo, hi uint32) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.DequeueRange(now, lo, hi)
}

// Len returns the number of queued elements.
func (s *SyncList) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.Len()
}

// MinSendTime returns the earliest eligibility time across the list.
func (s *SyncList) MinSendTime() (Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.MinSendTime()
}

// UpdateRank atomically re-ranks the element with the given id — the
// dequeue(f)+enqueue(f) pattern under one critical section, so
// concurrent readers never observe the element missing.
func (s *SyncList) UpdateRank(id uint32, rank uint64, sendTime clock.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.UpdateRank(id, rank, sendTime)
}

// Snapshot returns the rank-ordered contents.
func (s *SyncList) Snapshot() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.Snapshot()
}
