package pieo

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestSyncListBasics(t *testing.T) {
	l := NewSyncList(16)
	if err := l.Enqueue(Entry{ID: 1, Rank: 10, SendTime: Always}); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	if !l.UpdateRank(1, 5, Always) {
		t.Fatal("UpdateRank failed")
	}
	e, ok := l.Dequeue(0)
	if !ok || e.Rank != 5 {
		t.Fatalf("Dequeue = %v,%v", e, ok)
	}
}

// TestSyncListConcurrent hammers the list from many goroutines; run
// under -race this validates the locking discipline, and the totals
// validate element conservation.
func TestSyncListConcurrent(t *testing.T) {
	const (
		producers   = 8
		perProducer = 500
	)
	l := NewSyncList(producers * perProducer)
	var wg sync.WaitGroup
	var enqueued, dequeued atomic.Int64

	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				id := uint32(p*perProducer + i)
				if err := l.Enqueue(Entry{ID: id, Rank: uint64(id % 97), SendTime: Always}); err != nil {
					t.Errorf("enqueue %d: %v", id, err)
					return
				}
				enqueued.Add(1)
			}
		}()
	}
	// Two consumers racing the producers.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for dequeued.Load() < producers*perProducer/2 {
				if _, ok := l.Dequeue(0); ok {
					dequeued.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	// Drain the rest single-threaded.
	for {
		if _, ok := l.Dequeue(0); !ok {
			break
		}
		dequeued.Add(1)
	}
	if enqueued.Load() != int64(producers*perProducer) || dequeued.Load() != enqueued.Load() {
		t.Fatalf("enqueued %d, dequeued %d", enqueued.Load(), dequeued.Load())
	}
}

func TestSyncListConcurrentRangeAndSnapshot(t *testing.T) {
	l := NewSyncList(1024)
	for i := uint32(0); i < 1024; i++ {
		l.Enqueue(Entry{ID: i, Rank: uint64(i), SendTime: Always})
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo := uint32(w * 256)
			for i := 0; i < 200; i++ {
				if e, ok := l.DequeueRange(0, lo, lo+255); ok {
					l.Enqueue(e)
				}
				l.Snapshot()
				l.MinSendTime()
			}
		}()
	}
	wg.Wait()
	if l.Len() != 1024 {
		t.Fatalf("Len = %d, want 1024 (conservation under churn)", l.Len())
	}
}
